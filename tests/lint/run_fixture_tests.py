#!/usr/bin/env python3
"""Fixture harness for the magesim-* lint checks.

Each fixture in tests/lint/fixtures/ is a known-bad or known-good input for
one check. Expected findings are annotated in-place:

  v.push_back(1);  // magesim-expect: hotpath-alloc
  // magesim-expect+2: guardedby-static   <- finding expected 2 lines below

The harness runs an analyzer over the fixtures and asserts the finding set
equals the expectation set exactly — a missing finding is a false negative,
an unannotated finding is a false positive; both fail.

Modes:
  --mode lite    run tools/tidy/magesim_tidy_lite.py (no toolchain needed)
  --mode plugin  run clang-tidy with -load libMagesimTidy.so; exits 77
                 (ctest SKIP_RETURN_CODE) when clang-tidy or the built
                 plugin is unavailable, so trees without LLVM dev packages
                 skip rather than fail.

Fixtures are copied to a temp directory before analysis: the path must not
contain a tests/ component, or the no-wallclock file allowlist (which
exempts test code) would blind that check.

Exit status: 0 pass, 1 expectation mismatch, 2 setup error, 77 skip.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
LITE = os.path.join(REPO_ROOT, "tools", "tidy", "magesim_tidy_lite.py")

EXPECT_RE = re.compile(r"magesim-expect(?:\+(\d+))?:\s*([\w, -]+)")
FINDING_RE = re.compile(r"^(.+?):(\d+):\d+:\s+warning:.*\[magesim-([\w-]+)\]")

SKIP = 77


def parse_expectations(fixture_dir):
    """{(basename, line, slug)} from magesim-expect annotations."""
    expected = set()
    for name in sorted(os.listdir(fixture_dir)):
        if not name.endswith((".cc", ".h")):
            continue
        path = os.path.join(fixture_dir, name)
        with open(path, "r", encoding="utf-8") as f:
            for lineno, text in enumerate(f, start=1):
                m = EXPECT_RE.search(text)
                if m is None:
                    continue
                offset = int(m.group(1) or 0)
                for slug in m.group(2).split(","):
                    expected.add((name, lineno + offset, slug.strip()))
    return expected


def parse_findings(output):
    found = set()
    for line in output.splitlines():
        m = FINDING_RE.match(line)
        if m is not None:
            found.add((os.path.basename(m.group(1)), int(m.group(2)),
                       m.group(3)))
    return found


def run_lite(tmp_dir):
    cc = sorted(os.path.join(tmp_dir, n) for n in os.listdir(tmp_dir)
                if n.endswith((".cc", ".h")))
    proc = subprocess.run([sys.executable, LITE] + cc,
                          capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        print(proc.stdout, proc.stderr, sep="\n", file=sys.stderr)
        print("lint-fixtures: lite analyzer failed (exit %d)"
              % proc.returncode, file=sys.stderr)
        sys.exit(2)
    return parse_findings(proc.stdout)


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for cand in ["clang-tidy"] + ["clang-tidy-%d" % v
                                  for v in range(21, 13, -1)]:
        if shutil.which(cand):
            return cand
    return None


def find_plugin(explicit):
    if explicit:
        return explicit if os.path.exists(explicit) else None
    for sub in ("build", "build-tidy", os.path.join("build", "tools", "tidy"),
                os.path.join("build-tidy", "tools", "tidy")):
        cand = os.path.join(REPO_ROOT, sub, "libMagesimTidy.so")
        if os.path.exists(cand):
            return cand
    return None


def run_plugin(tmp_dir, clang_tidy, plugin):
    out = []
    for name in sorted(os.listdir(tmp_dir)):
        if not name.endswith(".cc"):
            continue
        proc = subprocess.run(
            [clang_tidy, "-load", plugin, "--checks=-*,magesim-*",
             "--header-filter=.*", os.path.join(tmp_dir, name),
             "--", "-std=c++20", "-I", tmp_dir],
            capture_output=True, text=True)
        # clang-tidy exits non-zero on warnings only with -warnings-as-errors;
        # a hard failure (bad -load, compile error) surfaces on stderr.
        if proc.returncode not in (0, 1) or "error:" in proc.stderr:
            print(proc.stdout, proc.stderr, sep="\n", file=sys.stderr)
            print("lint-fixtures: clang-tidy failed on %s" % name,
                  file=sys.stderr)
            sys.exit(2)
        out.append(proc.stdout)
    return parse_findings("\n".join(out))


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--fixtures", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "fixtures"))
    ap.add_argument("--mode", choices=("lite", "plugin"), default="lite")
    ap.add_argument("--plugin", default=None,
                    help="path to libMagesimTidy.so (plugin mode)")
    ap.add_argument("--clang-tidy", dest="clang_tidy", default=None)
    # ctest passes a literal empty argument when the $<TARGET_EXISTS:...>
    # generator expression for --plugin collapses to nothing; drop it.
    args = ap.parse_args([a for a in argv if a])

    if not os.path.isdir(args.fixtures):
        print("lint-fixtures: no fixture dir at %s" % args.fixtures,
              file=sys.stderr)
        return 2

    expected = parse_expectations(args.fixtures)
    if not expected:
        print("lint-fixtures: fixtures contain no magesim-expect "
              "annotations; refusing to vacuously pass", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="magesim_lint_") as tmp_dir:
        for name in sorted(os.listdir(args.fixtures)):
            if name.endswith((".cc", ".h")):
                shutil.copy(os.path.join(args.fixtures, name), tmp_dir)

        if args.mode == "lite":
            found = run_lite(tmp_dir)
        else:
            clang_tidy = find_clang_tidy(args.clang_tidy)
            plugin = find_plugin(args.plugin)
            if clang_tidy is None or plugin is None:
                print("lint-fixtures: skip — %s not available" %
                      ("clang-tidy" if clang_tidy is None
                       else "libMagesimTidy.so"))
                return SKIP
            found = run_plugin(tmp_dir, clang_tidy, plugin)

    missing = sorted(expected - found)
    unexpected = sorted(found - expected)
    for f, line, slug in missing:
        print("MISSING    %s:%d [magesim-%s] (expected, not reported)"
              % (f, line, slug))
    for f, line, slug in unexpected:
        print("UNEXPECTED %s:%d [magesim-%s] (reported, not expected)"
              % (f, line, slug))
    if missing or unexpected:
        print("lint-fixtures: FAIL (%d missing, %d unexpected; mode=%s)"
              % (len(missing), len(unexpected), args.mode))
        return 1
    print("lint-fixtures: PASS (%d expectations, mode=%s)"
          % (len(expected), args.mode))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
