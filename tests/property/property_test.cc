// Parameterized property tests: invariants that must hold for every system
// variant, offloading ratio, and configuration sweep.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "src/accounting/partitioned_fifo.h"
#include "src/core/farmem.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

// ---------------------------------------------------------------------------
// Per-variant invariants.
// ---------------------------------------------------------------------------

class VariantProperty : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantProperty,
                         ::testing::Values("ideal", "hermit", "dilos", "magelnx", "magelib"));

TEST_P(VariantProperty, RunIsDeterministic) {
  auto run = [&] {
    SeqScanWorkload wl({.region_pages = 6144, .threads = 8, .passes = 2});
    FarMemoryMachine::Options opt;
    opt.kernel = ConfigByName(GetParam());
    opt.local_mem_ratio = 0.6;
    FarMemoryMachine m(opt, wl);
    RunResult r = m.Run();
    return std::tuple(r.sim_seconds, r.faults, r.evicted_pages, r.sync_evictions,
                      r.fault_latency.sum());
  };
  EXPECT_EQ(run(), run());
}

TEST_P(VariantProperty, PageTableFrameBijection) {
  SeqScanWorkload wl({.region_pages = 6144, .threads = 8, .passes = 2});
  FarMemoryMachine::Options opt;
  opt.kernel = ConfigByName(GetParam());
  opt.local_mem_ratio = 0.5;
  FarMemoryMachine m(opt, wl);
  m.Run();
  // Every present PTE points at a mapped frame that points back at it, and
  // no frame is referenced by two PTEs.
  Kernel& k = m.kernel();
  std::set<const PageFrame*> seen;
  uint64_t mapped = 0;
  for (uint64_t v = 0; v < k.wss_pages(); ++v) {
    const Pte& pte = k.page_table().At(v);
    if (!pte.present) continue;
    ++mapped;
    ASSERT_NE(pte.frame, nullptr);
    EXPECT_EQ(pte.frame->vpn, v);
    EXPECT_EQ(pte.frame->state, PageFrame::State::kMapped);
    EXPECT_TRUE(seen.insert(pte.frame).second) << "frame aliased at vpn " << v;
  }
  EXPECT_EQ(mapped, k.page_table().mapped_pages());
  // Residency never exceeds local memory.
  EXPECT_LE(mapped, k.local_pages());
}

TEST_P(VariantProperty, NoInFlightStateLeaksAfterRun) {
  SeqScanWorkload wl({.region_pages = 6144, .threads = 8, .passes = 2});
  FarMemoryMachine::Options opt;
  opt.kernel = ConfigByName(GetParam());
  opt.local_mem_ratio = 0.5;
  FarMemoryMachine m(opt, wl);
  m.Run();
  Kernel& k = m.kernel();
  for (uint64_t v = 0; v < k.wss_pages(); ++v) {
    EXPECT_FALSE(k.page_table().At(v).fault_in_flight) << "vpn " << v;
  }
  EXPECT_EQ(k.DebugFreeWaiters(), 0u);
  EXPECT_EQ(k.DebugPendingReclaims(), 0u);
}

TEST_P(VariantProperty, MagePrinciplesEnforced) {
  KernelConfig cfg = ConfigByName(GetParam());
  SeqScanWorkload wl({.region_pages = 12288, .threads = 16, .passes = 2,
                      .compute_per_page_ns = 300});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.4;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  if (cfg.variant == Variant::kMageLib || cfg.variant == Variant::kMageLnx ||
      cfg.variant == Variant::kIdeal) {
    EXPECT_EQ(r.sync_evictions, 0u);  // P1: fault path never evicts
  }
  // Work conservation: every access was eventually served.
  EXPECT_EQ(r.total_ops, 2u * 12288u);
}

// ---------------------------------------------------------------------------
// Offloading-ratio sweep properties.
// ---------------------------------------------------------------------------

class RatioProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Offloads, RatioProperty, ::testing::Values(10, 25, 50, 75, 90));

TEST_P(RatioProperty, ChecksumIndependentOfPlacementAndFaultsBounded) {
  int far = GetParam();
  SeqScanWorkload wl({.region_pages = 8192, .threads = 8, .passes = 2});
  RunResult r;
  {
    FarMemoryMachine::Options opt;
    opt.kernel = MageLibConfig();
    opt.local_mem_ratio = 1.0 - far / 100.0;
    FarMemoryMachine m(opt, wl);  // engine destroyed at scope exit
    r = m.Run();
  }
  SeqScanWorkload ref({.region_pages = 8192, .threads = 8, .passes = 2});
  FarMemoryMachine::Options ro;
  ro.kernel = MageLibConfig();
  ro.local_mem_ratio = 1.0;
  FarMemoryMachine rm(ro, ref);
  rm.Run();

  EXPECT_EQ(wl.checksum(), ref.checksum());
  // Fault count is bounded by total accesses and at least the initially
  // non-resident fraction of one pass.
  EXPECT_LE(r.faults, 2u * 8192u);
  EXPECT_GE(r.faults + r.sync_evictions * 0, 8192ull * static_cast<uint64_t>(far) / 100 / 2);
}

TEST_P(RatioProperty, EvictionBalancesFaults) {
  int far = GetParam();
  SeqScanWorkload wl({.region_pages = 8192, .threads = 8, .passes = 3});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 1.0 - far / 100.0;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  // Steady state: pages evicted tracks pages faulted in (within the
  // watermark headroom plus one pipeline depth).
  uint64_t slack = m.kernel().high_wm_pages() + 4 * 256 + 64;
  EXPECT_LE(r.evicted_pages, r.faults + slack);
  EXPECT_GE(r.evicted_pages + slack, r.faults);
}

// ---------------------------------------------------------------------------
// TLB shootdown scaling properties.
// ---------------------------------------------------------------------------

class ShootdownProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(TargetCounts, ShootdownProperty, ::testing::Values(2, 8, 24, 48));

TEST_P(ShootdownProperty, LatencyGrowsWithTargetsAndBatchingAmortizes) {
  int targets = GetParam();
  auto shootdown_ns = [&](int pages) {
    Engine e;
    Topology topo(BareMetalParams());
    TlbShootdownManager mgr(topo);
    std::vector<CoreId> cores;
    for (int i = 0; i < targets; ++i) cores.push_back(i);
    mgr.SetTargetCores(cores);
    SimTime done = -1;
    auto body = [](TlbShootdownManager& mgr, SimTime& done, int pages) -> Task<> {
      co_await mgr.Shootdown(0, pages);
      done = Engine::current().now();
    };
    e.Spawn(body(mgr, done, pages));
    e.Run();
    return done;
  };
  SimTime one_page = shootdown_ns(1);
  SimTime batch256 = shootdown_ns(256);
  // Batching 256 invalidations costs far less than 256 single shootdowns.
  EXPECT_LT(batch256, 20 * one_page);
  // More targets => strictly higher latency (sender serialization).
  if (targets > 2) {
    Engine e2;
    Topology topo2(BareMetalParams());
    TlbShootdownManager mgr2(topo2);
    mgr2.SetTargetCores({0, 1});
    SimTime small_done = -1;
    auto body = [](TlbShootdownManager& mgr, SimTime& done) -> Task<> {
      co_await mgr.Shootdown(0, 1);
      done = Engine::current().now();
    };
    e2.Spawn(body(mgr2, small_done));
    e2.Run();
    EXPECT_GT(one_page, small_done);
  }
}

// ---------------------------------------------------------------------------
// Accounting partition-count sweep.
// ---------------------------------------------------------------------------

class PartitionProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionProperty, ::testing::Values(1, 2, 8, 32));

TEST_P(PartitionProperty, AllPagesRemainReachable) {
  // Whatever the partition count, every inserted page can be isolated again:
  // no page is stranded by the hashing or round-robin scanning.
  Engine e;
  FramePool pool(512);
  PageTable pt(512);
  for (uint64_t i = 0; i < 512; ++i) {
    pool.frame(static_cast<uint32_t>(i)).state = PageFrame::State::kAllocated;
    pt.Map(i, &pool.frame(static_cast<uint32_t>(i)));
    pt.At(i).accessed = false;
  }
  PartitionedFifo fifo(pt, GetParam(), 4);
  e.Spawn([](PageTable& pt, FramePool& pool, PartitionedFifo& fifo) -> Task<> {
    for (uint32_t i = 0; i < 512; ++i) {
      co_await fifo.Insert(static_cast<CoreId>(i % 56), &pool.frame(i));
    }
    std::vector<PageFrame*> victims;
    int rounds = 0;
    while (victims.size() < 512 && rounds < 64) {
      for (int ev = 0; ev < 4; ++ev) {
        co_await fifo.IsolateBatch(ev, static_cast<CoreId>(ev), 16, &victims);
      }
      ++rounds;
    }
    EXPECT_EQ(victims.size(), 512u);
    EXPECT_EQ(fifo.tracked_pages(), 0u);
    std::set<PageFrame*> uniq(victims.begin(), victims.end());
    EXPECT_EQ(uniq.size(), 512u);
  }(pt, pool, fifo));
  e.Run();
}

}  // namespace
}  // namespace magesim
