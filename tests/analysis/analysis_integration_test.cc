// End-to-end analyzer integration: a full FarMemoryMachine run under the
// default abort posture must complete clean, populate the RunResult and
// metrics surfaces, and pass the invariant checker's lock-quiescence rule.
#include <gtest/gtest.h>

#include <string>

#include "src/analysis/lock_analyzer.h"
#include "src/core/farmem.h"
#include "src/sim/sync.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

TEST(AnalysisIntegrationTest, CleanRunUnderAbortPosture) {
  SeqScanWorkload wl(
      SeqScanWorkload::Options{.region_pages = 2048, .threads = 2, .passes = 2});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.6;
  opt.seed = 1;
  opt.analysis.enabled = true;  // default abort_on_violation: any bug aborts
  opt.check_final = true;
  opt.metrics.enabled = true;

  FarMemoryMachine m(opt, wl);
  ASSERT_NE(m.analyzer(), nullptr);
  RunResult r = m.Run();

  EXPECT_EQ(r.analysis_violations, 0u);
  EXPECT_TRUE(r.analysis_first_violation.empty());
  EXPECT_GT(r.analysis_locks, 0u);
  EXPECT_GT(r.faults, 0u);  // the scenario actually paged

  // Metrics surface.
  ASSERT_NE(m.metrics(), nullptr);
  EXPECT_EQ(m.metrics()->Counter("analysis.violations").value(), 0u);
  EXPECT_EQ(m.metrics()->Counter("analysis.locks").value(), r.analysis_locks);
  EXPECT_NE(m.run_report_json().find("\"analysis\""), std::string::npos);

  // Lock state is quiescent after the drain: the checker's rule passes.
  ASSERT_NE(m.checker(), nullptr);
  uint64_t before = m.checker()->total_violations();
  m.checker()->CheckLockQuiescence();
  EXPECT_EQ(m.checker()->total_violations(), before);
  EXPECT_TRUE(m.analyzer()->QuiescenceReport().empty());
}

TEST(AnalysisIntegrationTest, CheckerReportsHeldLockAtQuiescence) {
  SeqScanWorkload wl(
      SeqScanWorkload::Options{.region_pages = 512, .threads = 1, .passes = 1});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.6;
  opt.seed = 1;
  opt.analysis.enabled = true;
  opt.analysis.abort_on_violation = false;  // capture mode for the seeded bug
  opt.check_final = true;

  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_EQ(r.analysis_violations, 0u);

  // Seeded bug: a lock acquired and never released. The analyzer is still
  // installed (owned by the machine), so the checker's quiescence rule
  // must name it.
  SimMutex leaked("leaked-lock");
  ASSERT_TRUE(leaked.TryLock());
  uint64_t added = m.checker()->CheckLockQuiescence();
  EXPECT_EQ(added, 1u);
  ASSERT_FALSE(m.checker()->violations().empty());
  const Violation& v = m.checker()->violations().back();
  EXPECT_EQ(v.cls, ViolationClass::kLockQuiescence);
  EXPECT_NE(v.message.find("'leaked-lock'"), std::string::npos) << v.message;
  leaked.Unlock();
}

TEST(AnalysisIntegrationTest, EnvVarForceEnablesAnalyzer) {
  setenv("MAGESIM_ANALYSIS", "1", 1);
  SeqScanWorkload wl(
      SeqScanWorkload::Options{.region_pages = 256, .threads = 1, .passes = 1});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.6;
  opt.seed = 1;
  {
    FarMemoryMachine m(opt, wl);
    EXPECT_NE(m.analyzer(), nullptr);
  }
  setenv("MAGESIM_ANALYSIS", "0", 1);
  SeqScanWorkload wl2(
      SeqScanWorkload::Options{.region_pages = 256, .threads = 1, .passes = 1});
  {
    FarMemoryMachine m(opt, wl2);
    EXPECT_EQ(m.analyzer(), nullptr);
  }
  unsetenv("MAGESIM_ANALYSIS");
}

}  // namespace
}  // namespace magesim
