// Negative tests for the sim-time lock-discipline analyzer: each seeded bug
// class must produce a deterministic diagnostic naming the offending locks
// and tasks. All tests run the analyzer in capture mode (abort_on_violation =
// false) except the death test, which verifies the default abort posture.
#include "src/analysis/lock_analyzer.h"

#include <gtest/gtest.h>

#include <string>

#include "src/analysis/guarded.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace magesim {
namespace {

AnalysisOptions CaptureMode() {
  AnalysisOptions o;
  o.abort_on_violation = false;
  return o;
}

TEST(LockAnalyzerTest, CleanRunReportsNothing) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimMutex m("m");
  auto worker = [](SimMutex& m) -> Task<> {
    auto g = co_await m.Scoped();
    co_await Delay{10};  // Delay under a lock is the modeled CS cost: legal
  };
  e.Spawn(worker(m));
  e.Run();
  EXPECT_EQ(la.total_violations(), 0u);
  EXPECT_EQ(la.locks_registered(), 1u);
  EXPECT_TRUE(la.QuiescenceReport().empty());
}

TEST(LockAnalyzerTest, UnlockByNonOwnerIsReported) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimMutex m("victim");
  auto owner = [](LockAnalyzer& la, SimMutex& m) -> Task<> {
    la.NameCurrentTask("owner");
    co_await m.Lock();
    co_await Delay{100};
    m.Unlock();
  };
  auto thief = [](LockAnalyzer& la, SimMutex& m) -> Task<> {
    la.NameCurrentTask("thief");
    co_await Delay{50};
    m.Unlock();  // seeded bug: not the owner
  };
  e.Spawn(owner(la, m));
  e.Spawn(thief(la, m));
  e.Run();
  EXPECT_GE(la.count(AnalysisViolationKind::kUnlockNotOwner), 1u);
  ASSERT_FALSE(la.violations().empty());
  const std::string& msg = la.violations().front().message;
  EXPECT_NE(msg.find("'victim'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(thief)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(owner)"), std::string::npos) << msg;
}

TEST(LockAnalyzerTest, DoubleUnlockIsReported) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimMutex m("once");
  auto worker = [](SimMutex& m) -> Task<> {
    co_await m.Lock();
    m.Unlock();
    m.Unlock();  // seeded bug
    co_return;
  };
  e.Spawn(worker(m));
  e.Run();
  EXPECT_EQ(la.count(AnalysisViolationKind::kDoubleUnlock), 1u);
  ASSERT_FALSE(la.violations().empty());
  EXPECT_NE(la.violations().front().message.find("'once'"), std::string::npos);
  // The capture-mode hook keeps the primitive's state sane.
  EXPECT_FALSE(m.locked());
}

TEST(LockAnalyzerTest, GuardedAccessWithoutLockIsReported) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimMutex m("counter-lock");
  GuardedBy<int> counter(m);
  auto lawful = [](SimMutex& m, GuardedBy<int>& c) -> Task<> {
    auto g = co_await m.Scoped();
    c.Locked("counter") = 1;
  };
  auto rogue = [](GuardedBy<int>& c) -> Task<> {
    co_await Delay{10};
    c.Locked("counter") = 2;  // seeded bug: no lock held
  };
  e.Spawn(lawful(m, counter));
  e.Spawn(rogue(counter));
  e.Run();
  EXPECT_EQ(la.count(AnalysisViolationKind::kGuardedAccess), 1u);
  ASSERT_FALSE(la.violations().empty());
  const std::string& msg = la.violations().front().message;
  EXPECT_NE(msg.find("counter"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'counter-lock'"), std::string::npos) << msg;
}

TEST(LockAnalyzerTest, LockOrderCycleDetectedWithoutDeadlock) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimMutex a("A"), b("B"), c("C");
  // One task takes A->B, B->C, C->A strictly sequentially: no deadlock ever
  // manifests, but the class digraph closes a 3-cycle on the last pair.
  auto worker = [](SimMutex& a, SimMutex& b, SimMutex& c) -> Task<> {
    {
      auto g1 = co_await a.Scoped();
      auto g2 = co_await b.Scoped();
    }
    {
      auto g1 = co_await b.Scoped();
      auto g2 = co_await c.Scoped();
    }
    {
      auto g1 = co_await c.Scoped();
      auto g2 = co_await a.Scoped();  // seeded bug: closes A->B->C->A
    }
  };
  e.Spawn(worker(a, b, c));
  e.Run();
  EXPECT_EQ(la.count(AnalysisViolationKind::kLockOrderCycle), 1u);
  EXPECT_EQ(la.order_edges(), 3u);
  ASSERT_FALSE(la.violations().empty());
  const std::string& msg = la.violations().front().message;
  // The backtrail names every lock class on the cycle.
  EXPECT_NE(msg.find("'A'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'B'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'C'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("lock-order cycle"), std::string::npos) << msg;
}

TEST(LockAnalyzerTest, SameClassLocksDoNotFormEdges) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  // Two partitions of one striped structure share a class name: classic
  // lockdep treats them as one class and tracks no self-edge.
  SimMutex p0("part"), p1("part");
  auto worker = [](SimMutex& p0, SimMutex& p1) -> Task<> {
    auto g1 = co_await p0.Scoped();
    auto g2 = co_await p1.Scoped();
  };
  e.Spawn(worker(p0, p1));
  e.Run();
  EXPECT_EQ(la.order_edges(), 0u);
  EXPECT_EQ(la.total_violations(), 0u);
  EXPECT_EQ(la.lock_classes(), 1u);
  EXPECT_EQ(la.locks_registered(), 2u);
}

TEST(LockAnalyzerTest, HeldAcrossAwaitIsReported) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimMutex m("held-lock");
  SimEvent ev("slow-io");
  auto holder = [](SimMutex& m, SimEvent& ev) -> Task<> {
    auto g = co_await m.Scoped();
    co_await ev.Wait();  // seeded bug: event wait while holding the lock
  };
  auto setter = [](SimEvent& ev) -> Task<> {
    co_await Delay{100};
    ev.Set();
  };
  e.Spawn(holder(m, ev));
  e.Spawn(setter(ev));
  e.Run();
  EXPECT_EQ(la.count(AnalysisViolationKind::kHeldAcrossAwait), 1u);
  ASSERT_FALSE(la.violations().empty());
  const std::string& msg = la.violations().front().message;
  EXPECT_NE(msg.find("'held-lock'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'slow-io'"), std::string::npos) << msg;
}

TEST(LockAnalyzerTest, AllowlistSuppressesHeldAcrossAwait) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  la.AllowHeldAcrossAwait("held-lock", "slow-io");
  SimMutex m("held-lock");
  SimMutex other("other-lock");
  SimEvent ev("slow-io");
  auto holder = [](SimMutex& m, SimEvent& ev) -> Task<> {
    auto g = co_await m.Scoped();
    co_await ev.Wait();  // allowlisted (lock class x site)
  };
  auto other_holder = [](SimMutex& m, SimEvent& ev) -> Task<> {
    co_await Delay{10};
    auto g = co_await m.Scoped();
    co_await ev.Wait();  // NOT allowlisted: different lock class
  };
  auto setter = [](SimEvent& ev) -> Task<> {
    co_await Delay{100};
    ev.Set();
  };
  e.Spawn(holder(m, ev));
  e.Spawn(other_holder(other, ev));
  e.Spawn(setter(ev));
  e.Run();
  EXPECT_EQ(la.count(AnalysisViolationKind::kHeldAcrossAwait), 1u);
  ASSERT_FALSE(la.violations().empty());
  EXPECT_NE(la.violations().front().message.find("'other-lock'"), std::string::npos);
}

TEST(LockAnalyzerTest, WildcardAllowlistCoversAnySite) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  la.AllowHeldAcrossAwait("held-lock");  // site defaults to "*"
  SimMutex m("held-lock");
  SimEvent ev("anything");
  auto holder = [](SimMutex& m, SimEvent& ev) -> Task<> {
    auto g = co_await m.Scoped();
    co_await ev.Wait();
  };
  auto setter = [](SimEvent& ev) -> Task<> {
    co_await Delay{100};
    ev.Set();
  };
  e.Spawn(holder(m, ev));
  e.Spawn(setter(ev));
  e.Run();
  EXPECT_EQ(la.total_violations(), 0u);
}

TEST(LockAnalyzerTest, DelayUnderLockOnlyFlaggedOnOptIn) {
  auto run = [](bool flag_delays) {
    Engine e;
    AnalysisOptions o = CaptureMode();
    o.flag_delay_awaits = flag_delays;
    LockAnalyzer la(o);
    la.Install();
    SimMutex m("cs");
    auto worker = [](SimMutex& m) -> Task<> {
      auto g = co_await m.Scoped();
      co_await Delay{25};  // modeled critical-section cost
    };
    e.Spawn(worker(m));
    e.Run();
    return la.count(AnalysisViolationKind::kHeldAcrossAwait);
  };
  EXPECT_EQ(run(false), 0u);
  EXPECT_EQ(run(true), 1u);
}

TEST(LockAnalyzerTest, CoreAffinityViolationIsReported) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  auto worker = [](LockAnalyzer& la) -> Task<> {
    la.NameCurrentTask("app-0", /*core=*/0);
    la.CheckCoreAffinity(0, "pcp cache fill");  // own core: fine
    la.CheckCoreAffinity(3, "pcp cache fill");  // seeded bug: core 3's cache
    co_return;
  };
  e.Spawn(worker(la));
  e.Run();
  EXPECT_EQ(la.count(AnalysisViolationKind::kCoreAffinity), 1u);
  ASSERT_FALSE(la.violations().empty());
  const std::string& msg = la.violations().front().message;
  EXPECT_NE(msg.find("core 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(app-0)"), std::string::npos) << msg;
}

TEST(LockAnalyzerTest, UnboundTasksPassCoreAffinity) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  auto evictor = [](LockAnalyzer& la) -> Task<> {
    la.NameCurrentTask("evictor-0");  // unbound: touches every core's caches
    la.CheckCoreAffinity(5, "pcp cache spill");
    co_return;
  };
  e.Spawn(evictor(la));
  e.Run();
  EXPECT_EQ(la.total_violations(), 0u);
}

TEST(LockAnalyzerTest, FaultOwnershipProtocolIsEnforced) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  auto faulter = [](LockAnalyzer& la) -> Task<> {
    la.NameCurrentTask("faulter");
    la.OnFaultBegin(42);
    co_await Delay{100};
    la.OnFaultEnd(42);  // owner finishing its own fault: fine
  };
  auto meddler = [](LockAnalyzer& la) -> Task<> {
    la.NameCurrentTask("meddler");
    co_await Delay{50};
    la.CheckFaultOwner(42, "Map");  // seeded bug: someone else's fault
  };
  e.Spawn(faulter(la));
  e.Spawn(meddler(la));
  e.Run();
  EXPECT_EQ(la.count(AnalysisViolationKind::kFaultProtocol), 1u);
  ASSERT_FALSE(la.violations().empty());
  const std::string& msg = la.violations().front().message;
  EXPECT_NE(msg.find("vpn 42"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(meddler)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(faulter)"), std::string::npos) << msg;
}

TEST(LockAnalyzerTest, UnisolatedUnmapIsReported) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  // Setup code (outside any task) passes; a task unmapping a frame that was
  // never isolated from the accounting lists is the seeded bug.
  la.CheckFrameIsolated(false, 7, "Unmap");
  EXPECT_EQ(la.total_violations(), 0u);
  auto worker = [](LockAnalyzer& la) -> Task<> {
    la.CheckFrameIsolated(true, 7, "Unmap");   // isolated: fine
    la.CheckFrameIsolated(false, 7, "Unmap");  // seeded bug
    co_return;
  };
  e.Spawn(worker(la));
  e.Run();
  EXPECT_EQ(la.count(AnalysisViolationKind::kFaultProtocol), 1u);
  EXPECT_NE(la.violations().front().message.find("not isolated"), std::string::npos);
}

TEST(LockAnalyzerTest, ExemptScopeSilencesAnalysis) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimMutex m("shortcut");
  GuardedBy<int> state(m);
  auto worker = [](GuardedBy<int>& state) -> Task<> {
    AnalysisExemptScope exempt;  // deliberate modeling shortcut
    EXPECT_EQ(LockAnalyzer::Active(), nullptr);
    state.Locked("state") = 1;  // would violate outside the scope
    co_return;
  };
  e.Spawn(worker(state));
  e.Run();
  EXPECT_NE(LockAnalyzer::Active(), nullptr);  // scope ended
  EXPECT_EQ(la.total_violations(), 0u);
}

TEST(LockAnalyzerTest, QuiescenceReportNamesHeldLocks) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimMutex m("leaked-lock");
  SimEvent never("never-set");
  auto parked = [](LockAnalyzer& la, SimMutex& m, SimEvent& never) -> Task<> {
    la.NameCurrentTask("parker");
    co_await m.Lock();
    co_await never.Wait();  // parks forever holding the lock
    m.Unlock();
  };
  la.AllowHeldAcrossAwait("leaked-lock");  // isolate the quiescence rule
  e.Spawn(parked(la, m, never));
  e.Run();  // drains with the task parked
  std::vector<std::string> held = la.QuiescenceReport();
  ASSERT_EQ(held.size(), 1u);
  EXPECT_NE(held[0].find("'leaked-lock'"), std::string::npos) << held[0];
  EXPECT_NE(held[0].find("(parker)"), std::string::npos) << held[0];
}

TEST(LockAnalyzerTest, SharedUnlockByNonHolderIsReported) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimSharedMutex rw("rw");
  auto reader = [](SimSharedMutex& rw) -> Task<> {
    co_await rw.LockShared();
    co_await Delay{100};
    rw.UnlockShared();
  };
  auto rogue = [](SimSharedMutex& rw) -> Task<> {
    co_await Delay{50};
    rw.UnlockShared();  // seeded bug: never acquired
  };
  e.Spawn(reader(rw));
  e.Spawn(rogue(rw));
  e.Run();
  EXPECT_EQ(la.count(AnalysisViolationKind::kUnlockNotOwner), 1u);
  EXPECT_NE(la.violations().front().message.find("'rw'"), std::string::npos);
}

TEST(LockAnalyzerTest, TryLockAcquisitionsAreTracked) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimMutex m("trylock");
  auto worker = [](SimMutex& m) -> Task<> {
    EXPECT_TRUE(m.TryLock());
    m.AssertHeld("trylocked state");  // must pass: TryLock routes the hook
    m.Unlock();
    co_return;
  };
  e.Spawn(worker(m));
  e.Run();
  EXPECT_EQ(la.total_violations(), 0u);
  EXPECT_EQ(la.locks_registered(), 1u);
}

TEST(LockAnalyzerTest, ReportSummarizesPerKindCounts) {
  Engine e;
  LockAnalyzer la(CaptureMode());
  la.Install();
  SimMutex m("m");
  auto worker = [](SimMutex& m) -> Task<> {
    co_await m.Lock();
    m.Unlock();
    m.Unlock();
    co_return;
  };
  e.Spawn(worker(m));
  e.Run();
  std::string report = la.Report();
  EXPECT_NE(report.find("double_unlock: 1"), std::string::npos) << report;
  EXPECT_NE(report.find("1 violations"), std::string::npos) << report;
}

TEST(LockAnalyzerDeathTest, AbortsWithNamedDiagnosticByDefault) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine e;
        LockAnalyzer la;  // default: abort_on_violation = true
        la.Install();
        SimMutex m("fatal-lock");
        auto worker = [](SimMutex& m) -> Task<> {
          co_await m.Lock();
          m.Unlock();
          m.Unlock();
          co_return;
        };
        e.Spawn(worker(m));
        e.Run();
      },
      "magesim-analysis: FATAL double_unlock.*'fatal-lock'");
}

}  // namespace
}  // namespace magesim
