// Allocator-equivalence regression test: the slab allocator recycles
// coroutine frames and completion blocks, and must be invisible to the
// simulation. The canonical golden scenario is run twice in-process — slab
// enabled and disabled — and the full trace fingerprints (hash, per-type
// event counts, end-of-run results) must be identical to each other AND to
// the committed golden file. Any divergence means allocation strategy leaked
// into simulated behavior (e.g. iteration order over recycled addresses).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/core/farmem.h"
#include "src/sim/slab_alloc.h"
#include "src/trace/trace.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

// Same scenario as golden_trace_test's RunCanonical — the committed
// seqscan_magelib.golden is the cross-check that BOTH allocator modes
// reproduce the canonical behavior, not merely each other's.
std::map<std::string, uint64_t> RunCanonical() {
  SeqScanWorkload wl(
      SeqScanWorkload::Options{.region_pages = 2048, .threads = 2, .passes = 2});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.6;
  opt.seed = 1;

  Tracer tracer;
  TraceHashSink hash;
  tracer.AddSink(&hash);
  tracer.Install();

  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();

  std::map<std::string, uint64_t> fp;
  fp["hash"] = hash.hash();
  fp["total"] = hash.total_events();
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    TraceEventType t = static_cast<TraceEventType>(i);
    fp[std::string("count.") + TraceEventName(t)] = hash.count(t);
  }
  fp["result.faults"] = r.faults;
  fp["result.evicted_pages"] = r.evicted_pages;
  fp["result.total_ops"] = r.total_ops;
  fp["result.sim_ns"] = static_cast<uint64_t>(r.sim_seconds * 1e9 + 0.5);
  return fp;
}

std::map<std::string, uint64_t> LoadGolden(const std::string& path) {
  std::map<std::string, uint64_t> g;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    g[line.substr(0, eq)] = std::strtoull(line.c_str() + eq + 1, nullptr, 10);
  }
  return g;
}

std::string DiffMaps(const std::map<std::string, uint64_t>& want,
                     const std::map<std::string, uint64_t>& got) {
  std::ostringstream diff;
  for (const auto& [k, w] : want) {
    auto it = got.find(k);
    uint64_t g = it == got.end() ? 0 : it->second;
    if (g != w) diff << "  " << k << ": " << w << " != " << g << "\n";
  }
  for (const auto& [k, v] : got) {
    if (want.find(k) == want.end() && v != 0) {
      diff << "  " << k << ": <absent> != " << v << "\n";
    }
  }
  return diff.str();
}

class SlabEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override { entry_enabled_ = SlabAllocator::enabled(); }
  void TearDown() override { SlabAllocator::set_enabled(entry_enabled_); }
  bool entry_enabled_ = false;
};

TEST_F(SlabEquivalenceTest, SlabOnAndOffProduceIdenticalGoldenTraces) {
  SlabAllocator::set_enabled(true);
  std::map<std::string, uint64_t> with_slab = RunCanonical();

  SlabAllocator::set_enabled(false);
  std::map<std::string, uint64_t> with_heap = RunCanonical();

  std::string diff = DiffMaps(with_slab, with_heap);
  EXPECT_TRUE(diff.empty())
      << "slab-on vs slab-off trace fingerprints diverged — the allocator is "
         "not behavior-neutral:\n"
      << diff;

  // Both must also match the committed golden: equivalence between two
  // equally-wrong runs would be vacuous.
  std::string path = std::string(MAGESIM_GOLDEN_DIR) + "/seqscan_magelib.golden";
  std::map<std::string, uint64_t> golden = LoadGolden(path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << path;
  std::string gdiff = DiffMaps(golden, with_slab);
  EXPECT_TRUE(gdiff.empty())
      << "slab-on run diverged from committed golden (" << path << "):\n"
      << gdiff;
}

}  // namespace
}  // namespace magesim
