// Golden-trace regression test for the multi-tenant path: a canonical
// two-tenant scenario (protected latency scanner + batch GUPS-style
// neighbor), fingerprinted by trace hash plus per-type event counts — so any
// behavioral change to charging, QoS-tiered victim selection, hard-limit
// admission, or the per-tenant balance controller shows up as a readable
// per-counter diff.
//
// Intentional behavior changes: regenerate with
//   MAGESIM_UPDATE_GOLDEN=1 ./build/tests/tenancy_golden_test
// and commit the updated golden alongside the change that caused it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/core/farmem.h"
#include "src/tenancy/tenant_spec.h"
#include "src/trace/trace.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

std::string GoldenPath() {
  return std::string(MAGESIM_GOLDEN_DIR) + "/tenancy_synthetic.golden";
}

// Canonical scenario: a weight-4 latency scanner with a 40% hard limit next
// to a weight-1 batch scanner allowed 70%, at 50% far memory. Small enough
// to run in about a second, rich enough to exercise charging, tiered victim
// selection, prefetch QoS gating, batch backpressure and soft-limit
// adjustment.
std::map<std::string, uint64_t> RunCanonical() {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.seed = 1;
  std::string err;
  EXPECT_TRUE(ParseTenancyList(
      "lat:4:0.4:latency=seqscan/2,pages=2048,passes=2;"
      "bg:1:0.7:batch=seqscan/2,pages=4096,passes=2",
      &opt.tenancy, &err))
      << err;

  Tracer tracer;
  TraceHashSink hash;
  tracer.AddSink(&hash);
  tracer.Install();

  SeqScanWorkload placeholder(
      SeqScanWorkload::Options{.region_pages = 64, .threads = 1, .passes = 1});
  FarMemoryMachine m(opt, placeholder);
  RunResult r = m.Run();
  tracer.Uninstall();

  std::map<std::string, uint64_t> fp;
  fp["hash"] = hash.hash();
  fp["total"] = hash.total_events();
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    TraceEventType t = static_cast<TraceEventType>(i);
    fp[std::string("count.") + TraceEventName(t)] = hash.count(t);
  }
  fp["result.faults"] = r.faults;
  fp["result.evicted_pages"] = r.evicted_pages;
  fp["result.total_ops"] = r.total_ops;
  fp["result.sim_ns"] = static_cast<uint64_t>(r.sim_seconds * 1e9 + 0.5);
  for (size_t t = 0; t < r.tenants.size(); ++t) {
    const TenantRunResult& tr = r.tenants[t];
    std::string pre = "tenant." + tr.name + ".";
    fp[pre + "ops"] = tr.ops;
    fp[pre + "faults"] = tr.faults;
    fp[pre + "evict_selected"] = tr.evict_selected;
    fp[pre + "hard_limit_waits"] = tr.hard_limit_waits;
    fp[pre + "backpressure_waits"] = tr.backpressure_waits;
    fp[pre + "prefetch_denied"] = tr.prefetch_denied;
    fp[pre + "soft_adjusts"] = tr.soft_adjusts;
  }
  return fp;
}

std::map<std::string, uint64_t> LoadGolden(const std::string& path) {
  std::map<std::string, uint64_t> g;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    g[line.substr(0, eq)] = std::strtoull(line.c_str() + eq + 1, nullptr, 10);
  }
  return g;
}

void SaveGolden(const std::string& path, const std::map<std::string, uint64_t>& fp) {
  std::ofstream out(path);
  out << "# Golden fingerprint for the canonical two-tenant scenario.\n"
      << "# Regenerate: MAGESIM_UPDATE_GOLDEN=1 ./build/tests/tenancy_golden_test\n";
  for (const auto& [k, v] : fp) out << k << "=" << v << "\n";
}

TEST(TenancyGoldenTest, CanonicalTwoTenantScenarioMatchesGolden) {
  std::map<std::string, uint64_t> fp = RunCanonical();

  if (std::getenv("MAGESIM_UPDATE_GOLDEN") != nullptr) {
    SaveGolden(GoldenPath(), fp);
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  std::map<std::string, uint64_t> golden = LoadGolden(GoldenPath());
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << GoldenPath()
      << " — generate it with MAGESIM_UPDATE_GOLDEN=1";

  std::ostringstream diff;
  for (const auto& [k, want] : golden) {
    auto it = fp.find(k);
    uint64_t got = it == fp.end() ? 0 : it->second;
    if (got != want) {
      diff << "  " << k << ": golden=" << want << " got=" << got << " ("
           << (got >= want ? "+" : "-") << (got >= want ? got - want : want - got)
           << ")\n";
    }
  }
  for (const auto& [k, v] : fp) {
    if (golden.find(k) == golden.end() && v != 0) {
      diff << "  " << k << ": golden=<absent> got=" << v << "\n";
    }
  }
  EXPECT_TRUE(diff.str().empty())
      << "trace fingerprint diverged from golden (" << GoldenPath() << "):\n"
      << diff.str()
      << "If this change is intentional, regenerate with MAGESIM_UPDATE_GOLDEN=1 "
         "and commit the new golden.";
}

}  // namespace
}  // namespace magesim
