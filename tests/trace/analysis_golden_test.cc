// Golden-trace guards for the lock-discipline analyzer.
//
// 1. Analyzer-off equivalence: running the canonical scenario WITH the
//    analyzer must reproduce the analyzer-off golden fingerprint exactly —
//    the hooks add no delays, no events and no behavior change on a clean
//    run, so traces stay byte-identical between the default and analysis
//    builds.
// 2. Analysis-stream golden: a synthetic scenario seeded with lock-order and
//    discipline bugs pins the analysis.* event stream (edge and violation
//    events) against its own golden file.
//
// Regenerate intentionally changed goldens with
//   MAGESIM_UPDATE_GOLDEN=1 ./build/tests/analysis_golden_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/analysis/lock_analyzer.h"
#include "src/core/farmem.h"
#include "src/sim/sync.h"
#include "src/trace/trace.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

std::map<std::string, uint64_t> LoadGolden(const std::string& path) {
  std::map<std::string, uint64_t> g;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    g[line.substr(0, eq)] = std::strtoull(line.c_str() + eq + 1, nullptr, 10);
  }
  return g;
}

void SaveGolden(const std::string& path, const std::string& header,
                const std::map<std::string, uint64_t>& fp) {
  std::ofstream out(path);
  out << header;
  for (const auto& [k, v] : fp) out << k << "=" << v << "\n";
}

std::string DiffAgainst(const std::map<std::string, uint64_t>& golden,
                        const std::map<std::string, uint64_t>& fp) {
  std::ostringstream diff;
  for (const auto& [k, want] : golden) {
    auto it = fp.find(k);
    uint64_t got = it == fp.end() ? 0 : it->second;
    if (got != want) {
      diff << "  " << k << ": golden=" << want << " got=" << got << "\n";
    }
  }
  for (const auto& [k, v] : fp) {
    if (golden.find(k) == golden.end() && v != 0) {
      diff << "  " << k << ": golden=<absent> got=" << v << "\n";
    }
  }
  return diff.str();
}

// Mirrors golden_trace_test's canonical scenario, with the analyzer on.
std::map<std::string, uint64_t> RunCanonicalAnalyzed() {
  SeqScanWorkload wl(
      SeqScanWorkload::Options{.region_pages = 2048, .threads = 2, .passes = 2});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.6;
  opt.seed = 1;
  opt.analysis.enabled = true;  // abort posture: a violation kills the test

  Tracer tracer;
  TraceHashSink hash;
  tracer.AddSink(&hash);
  tracer.Install();

  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_EQ(r.analysis_violations, 0u);
  EXPECT_GT(r.analysis_locks, 0u);

  std::map<std::string, uint64_t> fp;
  fp["hash"] = hash.hash();
  fp["total"] = hash.total_events();
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    TraceEventType t = static_cast<TraceEventType>(i);
    fp[std::string("count.") + TraceEventName(t)] = hash.count(t);
  }
  fp["result.faults"] = r.faults;
  fp["result.evicted_pages"] = r.evicted_pages;
  fp["result.total_ops"] = r.total_ops;
  fp["result.sim_ns"] = static_cast<uint64_t>(r.sim_seconds * 1e9 + 0.5);
  return fp;
}

TEST(AnalysisGoldenTest, AnalyzedCanonicalRunMatchesAnalyzerOffGolden) {
  std::string path = std::string(MAGESIM_GOLDEN_DIR) + "/seqscan_magelib.golden";
  std::map<std::string, uint64_t> golden = LoadGolden(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << path
      << " — generate with MAGESIM_UPDATE_GOLDEN=1 ./build/tests/golden_trace_test";

  std::map<std::string, uint64_t> fp = RunCanonicalAnalyzed();
  EXPECT_EQ(fp["count.analysis.lock_order_edge"], 0u)
      << "the clean canonical scenario must emit no analysis events";
  EXPECT_EQ(fp["count.analysis.violation"], 0u);

  std::string diff = DiffAgainst(golden, fp);
  EXPECT_TRUE(diff.empty())
      << "analyzer-on trace diverged from the analyzer-off golden (" << path
      << ") — the hooks must not perturb simulation behavior:\n" << diff;
}

// Synthetic discipline-bug scenario: deterministic nested acquisitions that
// grow two order edges and close a cycle, plus a double unlock. Pins the
// analysis.* event stream.
std::map<std::string, uint64_t> RunSyntheticBugs() {
  Engine e;
  AnalysisOptions ao;
  ao.abort_on_violation = false;  // capture: we want the events, not an abort
  LockAnalyzer la(ao);
  la.Install();

  Tracer tracer;
  TraceHashSink hash;
  tracer.AddSink(&hash);
  tracer.Install();

  SimMutex a("alpha"), b("beta");
  auto forward = [](SimMutex& a, SimMutex& b) -> Task<> {
    auto g1 = co_await a.Scoped();
    co_await Delay{10};
    auto g2 = co_await b.Scoped();  // edge alpha -> beta
  };
  auto backward = [](SimMutex& a, SimMutex& b) -> Task<> {
    co_await Delay{100};  // strictly after `forward`: no real deadlock
    auto g1 = co_await b.Scoped();
    auto g2 = co_await a.Scoped();  // edge beta -> alpha: closes the cycle
  };
  auto sloppy = [](SimMutex& a) -> Task<> {
    co_await Delay{200};
    co_await a.Lock();
    a.Unlock();
    a.Unlock();  // double unlock
  };
  e.Spawn(forward(a, b));
  e.Spawn(backward(a, b));
  e.Spawn(sloppy(a));
  e.Run();

  std::map<std::string, uint64_t> fp;
  fp["hash"] = hash.hash();
  fp["total"] = hash.total_events();
  fp["count.analysis.lock_order_edge"] =
      hash.count(TraceEventType::kAnalysisLockOrderEdge);
  fp["count.analysis.violation"] = hash.count(TraceEventType::kAnalysisViolation);
  fp["analyzer.order_edges"] = la.order_edges();
  fp["analyzer.violations"] = la.total_violations();
  fp["analyzer.cycles"] = la.count(AnalysisViolationKind::kLockOrderCycle);
  fp["analyzer.double_unlocks"] = la.count(AnalysisViolationKind::kDoubleUnlock);
  return fp;
}

TEST(AnalysisGoldenTest, SyntheticBugScenarioMatchesGolden) {
  std::string path = std::string(MAGESIM_GOLDEN_DIR) + "/analysis_synthetic.golden";
  std::map<std::string, uint64_t> fp = RunSyntheticBugs();

  if (std::getenv("MAGESIM_UPDATE_GOLDEN") != nullptr) {
    SaveGolden(path,
               "# Golden fingerprint for the synthetic lock-discipline bug "
               "scenario (analysis.* stream).\n"
               "# Regenerate: MAGESIM_UPDATE_GOLDEN=1 "
               "./build/tests/analysis_golden_test\n",
               fp);
    GTEST_SKIP() << "golden regenerated at " << path;
  }

  std::map<std::string, uint64_t> golden = LoadGolden(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << path
      << " — generate it with MAGESIM_UPDATE_GOLDEN=1";
  std::string diff = DiffAgainst(golden, fp);
  EXPECT_TRUE(diff.empty())
      << "analysis event stream diverged from golden (" << path << "):\n"
      << diff
      << "If this change is intentional, regenerate with MAGESIM_UPDATE_GOLDEN=1 "
         "and commit the new golden.";
}

}  // namespace
}  // namespace magesim
