// The event stream is the simulation's fingerprint: two runs with the same
// configuration and seed must emit byte-identical traces (same events, same
// order, same simulated timestamps), and a different seed must perturb them.
// This is the regression net for accidental nondeterminism — unordered-map
// iteration in a hot path, wall-clock leakage, uninitialized state.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/farmem.h"
#include "src/trace/trace.h"
#include "src/workloads/gups.h"

namespace magesim {
namespace {

struct TraceFingerprint {
  uint64_t hash = 0;
  uint64_t total = 0;
  std::array<uint64_t, kNumTraceEventTypes> counts{};
  uint64_t faults = 0;
  uint64_t evicted = 0;
  double sim_seconds = 0;
};

// Mid-size mixed scenario: GUPS random access over a working set at 50%
// far memory drives concurrent faults, pipelined evictions, shootdowns and
// free-page waits — every instrumented subsystem fires.
TraceFingerprint RunTraced(uint64_t seed) {
  GupsWorkload wl(GupsWorkload::Options{.total_pages = 6 * 1024,
                                        .threads = 4,
                                        .phase_change_at = 20 * kMillisecond,
                                        .run_for = 40 * kMillisecond});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.seed = seed;

  Tracer tracer;
  TraceHashSink hash;
  tracer.AddSink(&hash);
  tracer.Install();

  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();

  TraceFingerprint fp;
  fp.hash = hash.hash();
  fp.total = hash.total_events();
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    fp.counts[static_cast<size_t>(i)] = hash.count(static_cast<TraceEventType>(i));
  }
  fp.faults = r.faults;
  fp.evicted = r.evicted_pages;
  fp.sim_seconds = r.sim_seconds;
  return fp;
}

TEST(DeterminismTest, ScenarioExercisesAllSubsystems) {
  TraceFingerprint fp = RunTraced(1);
  // The scenario is only a meaningful determinism probe if it actually mixes
  // faults with evictions and fabric traffic.
  EXPECT_GT(fp.total, 10000u);
  EXPECT_GT(fp.counts[static_cast<size_t>(TraceEventType::kFaultStart)], 1000u);
  EXPECT_GT(fp.counts[static_cast<size_t>(TraceEventType::kEvictBatchEnd)], 0u);
  EXPECT_GT(fp.counts[static_cast<size_t>(TraceEventType::kShootdownDone)], 0u);
  EXPECT_GT(fp.counts[static_cast<size_t>(TraceEventType::kRdmaReadDone)], 0u);
  EXPECT_GT(fp.counts[static_cast<size_t>(TraceEventType::kRdmaWriteDone)], 0u);
  EXPECT_EQ(fp.counts[static_cast<size_t>(TraceEventType::kFaultStart)],
            fp.counts[static_cast<size_t>(TraceEventType::kFaultEnd)]);
}

TEST(DeterminismTest, SameSeedSameTrace) {
  TraceFingerprint a = RunTraced(42);
  TraceFingerprint b = RunTraced(42);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.total, b.total);
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    EXPECT_EQ(a.counts[static_cast<size_t>(i)], b.counts[static_cast<size_t>(i)])
        << TraceEventName(static_cast<TraceEventType>(i));
  }
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.evicted, b.evicted);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
}

TEST(DeterminismTest, DifferentSeedDifferentTrace) {
  TraceFingerprint a = RunTraced(42);
  TraceFingerprint b = RunTraced(43);
  // GUPS's access pattern is seeded, so the fault stream must diverge.
  EXPECT_NE(a.hash, b.hash);
}

}  // namespace
}  // namespace magesim
