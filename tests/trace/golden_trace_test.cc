// Golden-trace regression test: one canonical scenario, fingerprinted by the
// trace hash plus per-type event counts, checked against a golden file in the
// source tree. Any behavioral change to the fault path, evictors, allocators
// or fabric shows up here as a readable per-counter diff.
//
// Intentional behavior changes: regenerate with
//   MAGESIM_UPDATE_GOLDEN=1 ./build/tests/golden_trace_test
// and commit the updated golden alongside the change that caused it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "src/core/farmem.h"
#include "src/trace/trace.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

std::string GoldenPath() {
  return std::string(MAGESIM_GOLDEN_DIR) + "/seqscan_magelib.golden";
}

// Canonical scenario: a small sequential scan at 40% far memory on the
// MAGE-library config. Small enough to run in <1s, rich enough to exercise
// faults, prefetch, pipelined eviction, shootdowns and both RDMA directions.
std::map<std::string, uint64_t> RunCanonical() {
  SeqScanWorkload wl(
      SeqScanWorkload::Options{.region_pages = 2048, .threads = 2, .passes = 2});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.6;
  opt.seed = 1;

  Tracer tracer;
  TraceHashSink hash;
  tracer.AddSink(&hash);
  tracer.Install();

  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();

  std::map<std::string, uint64_t> fp;
  fp["hash"] = hash.hash();
  fp["total"] = hash.total_events();
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    TraceEventType t = static_cast<TraceEventType>(i);
    fp[std::string("count.") + TraceEventName(t)] = hash.count(t);
  }
  fp["result.faults"] = r.faults;
  fp["result.evicted_pages"] = r.evicted_pages;
  fp["result.total_ops"] = r.total_ops;
  fp["result.sim_ns"] = static_cast<uint64_t>(r.sim_seconds * 1e9 + 0.5);
  return fp;
}

std::map<std::string, uint64_t> LoadGolden(const std::string& path) {
  std::map<std::string, uint64_t> g;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    g[line.substr(0, eq)] = std::strtoull(line.c_str() + eq + 1, nullptr, 10);
  }
  return g;
}

void SaveGolden(const std::string& path, const std::map<std::string, uint64_t>& fp) {
  std::ofstream out(path);
  out << "# Golden fingerprint for the canonical seqscan/magelib scenario.\n"
      << "# Regenerate: MAGESIM_UPDATE_GOLDEN=1 ./build/tests/golden_trace_test\n";
  for (const auto& [k, v] : fp) out << k << "=" << v << "\n";
}

TEST(GoldenTraceTest, CanonicalScenarioMatchesGolden) {
  std::map<std::string, uint64_t> fp = RunCanonical();

  if (std::getenv("MAGESIM_UPDATE_GOLDEN") != nullptr) {
    SaveGolden(GoldenPath(), fp);
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  std::map<std::string, uint64_t> golden = LoadGolden(GoldenPath());
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << GoldenPath()
      << " — generate it with MAGESIM_UPDATE_GOLDEN=1";

  // Per-counter diff: report every divergent key, not just the first, so a
  // behavior change reads as "faults +312, evictions +2 batches" at a glance.
  std::ostringstream diff;
  for (const auto& [k, want] : golden) {
    auto it = fp.find(k);
    uint64_t got = it == fp.end() ? 0 : it->second;
    if (got != want) {
      diff << "  " << k << ": golden=" << want << " got=" << got << " ("
           << (got >= want ? "+" : "-") << (got >= want ? got - want : want - got)
           << ")\n";
    }
  }
  for (const auto& [k, v] : fp) {
    if (golden.find(k) == golden.end() && v != 0) {
      diff << "  " << k << ": golden=<absent> got=" << v << "\n";
    }
  }
  EXPECT_TRUE(diff.str().empty())
      << "trace fingerprint diverged from golden (" << GoldenPath() << "):\n"
      << diff.str()
      << "If this change is intentional, regenerate with MAGESIM_UPDATE_GOLDEN=1 "
         "and commit the new golden.";
}

}  // namespace
}  // namespace magesim
