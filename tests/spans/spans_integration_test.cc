// Integration tests for span tracing on full machine runs:
//  - spans_synthetic.golden pins the span stream (fingerprint + per-kind
//    counts) of the canonical two-tenant scenario;
//  - two same-seed runs produce identical span streams (deterministic ids);
//  - enabling spans does not perturb the simulation: the event-trace hash is
//    byte-identical with spans on and off;
//  - a brownout chaos run attributes the latency tenant's p99 band majority
//    to the resilience phases (retry/backoff/breaker), while the p50 band
//    stays dominated by the healthy read path;
//  - the run-report `tail` section carries the attribution end to end.
//
// Intentional behavior changes: regenerate with
//   MAGESIM_UPDATE_GOLDEN=1 ./build/tests/spans_integration_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/core/farmem.h"
#include "src/tenancy/tenant_spec.h"
#include "src/trace/trace.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

std::string GoldenPath() {
  return std::string(MAGESIM_GOLDEN_DIR) + "/spans_synthetic.golden";
}

constexpr const char* kTenants =
    "lat:4:0.4:latency=seqscan/2,pages=2048,passes=2;"
    "bg:1:0.7:batch=seqscan/2,pages=4096,passes=2";

struct SpanRun {
  std::string fingerprint;
  uint64_t trace_hash = 0;
  RunResult result;
  std::string report_json;
  SpanTailSummary fault_tail;
  SpanTailSummary lat_tenant_tail;
};

// The canonical two-tenant scenario from tenancy_golden_test, optionally
// with spans and/or a fault plan. Returns the span fingerprint (empty when
// spans are off) and the full event-trace hash.
SpanRun RunCanonical(bool spans, const std::string& fault_plan = "") {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.seed = 1;
  opt.fault_plan = fault_plan;
  opt.spans.enabled = spans;
  opt.spans.sample_every = 1;   // full fidelity: goldens pin the whole stream
  opt.metrics.enabled = spans;  // exercise the report `tail` section too
  std::string err;
  EXPECT_TRUE(ParseTenancyList(kTenants, &opt.tenancy, &err)) << err;

  Tracer tracer;
  TraceHashSink hash;
  tracer.AddSink(&hash);
  tracer.Install();

  SeqScanWorkload placeholder(
      SeqScanWorkload::Options{.region_pages = 64, .threads = 1, .passes = 1});
  FarMemoryMachine m(opt, placeholder);
  SpanRun out;
  out.result = m.Run();
  tracer.Uninstall();

  out.trace_hash = hash.hash();
  if (m.spans() != nullptr) {
    out.fingerprint = m.spans()->FingerprintSummary();
    out.fault_tail = m.spans()->Tail(SpanKind::kFault);
    out.lat_tenant_tail = m.spans()->TenantTail(0);  // spec order: lat first
    out.report_json = m.run_report_json();
  }
  return out;
}

TEST(SpansGoldenTest, CanonicalScenarioMatchesGolden) {
  SpanRun r = RunCanonical(/*spans=*/true);
  ASSERT_FALSE(r.fingerprint.empty());

  if (std::getenv("MAGESIM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    out << "# Span-stream fingerprint for the canonical two-tenant scenario.\n"
        << "# Regenerate: MAGESIM_UPDATE_GOLDEN=1 "
           "./build/tests/spans_integration_test\n"
        << r.fingerprint << "\n";
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good()) << "missing golden file " << GoldenPath()
                         << " — generate it with MAGESIM_UPDATE_GOLDEN=1";
  std::string line, want;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') want = line;
  }
  EXPECT_EQ(r.fingerprint, want)
      << "span stream diverged from golden (" << GoldenPath() << ").\n"
      << "If this change is intentional, regenerate with "
         "MAGESIM_UPDATE_GOLDEN=1 and commit the new golden.";
}

TEST(SpansGoldenTest, SameSeedRunsProduceIdenticalSpanStreams) {
  SpanRun a = RunCanonical(/*spans=*/true);
  SpanRun b = RunCanonical(/*spans=*/true);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

TEST(SpansGoldenTest, EnablingSpansDoesNotPerturbTheSimulation) {
  SpanRun off = RunCanonical(/*spans=*/false);
  SpanRun on = RunCanonical(/*spans=*/true);
  EXPECT_EQ(off.trace_hash, on.trace_hash)
      << "span instrumentation changed simulation behavior";
  EXPECT_EQ(off.result.faults, on.result.faults);
  EXPECT_EQ(off.result.total_ops, on.result.total_ops);
  EXPECT_DOUBLE_EQ(off.result.sim_seconds, on.result.sim_seconds);
}

// Sum of the resilience-phase share (retry attempts, backoff sleeps,
// breaker-admission parks) in one band.
double ResilienceShare(const SpanTailBand& band) {
  return band.Share(SpanKind::kRdmaRetry) + band.Share(SpanKind::kRetryBackoff) +
         band.Share(SpanKind::kBreakerWait);
}

TEST(SpansChaosTest, BrownoutAttributesLatencyTenantP99ToResiliencePhases) {
  // A heavy drop window covering the middle of the run: most faults stay
  // healthy (p50 dominated by the clean rdma read), but the tail is made of
  // ops that hit the drop window and paid deadline + retry + backoff.
  SpanRun r = RunCanonical(/*spans=*/true, "drop@2ms-8ms:p=0.5");
  ASSERT_GT(r.result.rdma_retries, 0u) << "fault plan injected nothing";

  const SpanTailSummary& lat = r.lat_tenant_tail;
  ASSERT_GT(lat.count, 0u);
  const SpanTailBand& p50 = lat.bands[0];
  const SpanTailBand& p99 = lat.bands[2];
  ASSERT_GT(p99.ops, 0u);

  // The named resilience phases must own the majority of the latency
  // tenant's p99 band and be a strictly larger share than at p50.
  EXPECT_GT(ResilienceShare(p99), 0.5)
      << "p99 band not attributed to retry/backoff/breaker";
  EXPECT_GT(ResilienceShare(p99), ResilienceShare(p50) + 0.25);

  // End-to-end: the run report's `tail` section carries the same story.
  EXPECT_NE(r.report_json.find("\"tail\":"), std::string::npos);
  EXPECT_NE(r.report_json.find("\"retry_backoff\""), std::string::npos);
  EXPECT_NE(r.report_json.find("\"tenants\":"), std::string::npos);
}

TEST(SpansReportTest, TailSectionShapesAndCounters) {
  SpanRun r = RunCanonical(/*spans=*/true);
  EXPECT_EQ(r.fault_tail.count, r.result.faults);
  // Every fault nanosecond is attributed: overall phase sum == latency sum.
  SimTime phase_total = 0;
  for (SimTime v : r.fault_tail.phase_ns) phase_total += v;
  EXPECT_EQ(phase_total, r.fault_tail.latency.sum());
  for (const char* key :
       {"\"tail\":", "\"ops\":", "\"fault\":", "\"bands\":", "\"p999\":",
        "\"slowest\":", "\"lat\":", "\"bg\":"}) {
    EXPECT_NE(r.report_json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace magesim
