// Unit tests for the span tracer: critical-path attribution on hand-built
// span trees, Histogram latency-slot helpers, tracer mechanics (context
// stacks, detached roots, leaves, causal registries), band aggregation, and
// the exemplar reservoir. Tree tests run without an engine; tests that need
// real latencies drive a small Engine with Delays.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"
#include "src/spans/spans.h"

namespace magesim {
namespace {

SimTime Phase(const std::array<SimTime, kNumSpanKinds>& p, SpanKind k) {
  return p[static_cast<size_t>(k)];
}

// Convenience: stack-built span node.
SpanRecord Node(uint64_t id, SpanKind kind, SimTime t0, SimTime t1) {
  SpanRecord r;
  r.id = id;
  r.kind = kind;
  r.t0 = t0;
  r.t1 = t1;
  return r;
}

void Attach(SpanRecord* parent, SpanRecord* child) {
  child->parent = parent;
  if (parent->last_child == nullptr) {
    parent->first_child = parent->last_child = child;
  } else {
    parent->last_child->next_sibling = child;
    parent->last_child = child;
  }
}

TEST(CriticalPathTest, LeafOnlyChargesOwnKind) {
  SpanRecord root = Node(1, SpanKind::kFault, 100, 400);
  std::array<SimTime, kNumSpanKinds> out{};
  ComputeCriticalPath(&root, out.data());
  EXPECT_EQ(Phase(out, SpanKind::kFault), 300);
}

TEST(CriticalPathTest, GapsAndTailGoToParent) {
  // fault [0,100]: entry [0,10], rdma_read [30,80]. Gap 10-30 and tail
  // 80-100 belong to the fault itself.
  SpanRecord root = Node(1, SpanKind::kFault, 0, 100);
  SpanRecord entry = Node(2, SpanKind::kEntry, 0, 10);
  SpanRecord read = Node(3, SpanKind::kRdmaRead, 30, 80);
  Attach(&root, &entry);
  Attach(&root, &read);
  std::array<SimTime, kNumSpanKinds> out{};
  ComputeCriticalPath(&root, out.data());
  EXPECT_EQ(Phase(out, SpanKind::kEntry), 10);
  EXPECT_EQ(Phase(out, SpanKind::kRdmaRead), 50);
  EXPECT_EQ(Phase(out, SpanKind::kFault), 40);
}

TEST(CriticalPathTest, EveryNanosecondAttributedExactlyOnce) {
  SpanRecord root = Node(1, SpanKind::kFault, 17, 1234);
  SpanRecord a = Node(2, SpanKind::kAlloc, 20, 300);
  SpanRecord b = Node(3, SpanKind::kRdmaRead, 300, 900);
  SpanRecord c = Node(4, SpanKind::kAccounting, 905, 1200);
  Attach(&root, &a);
  Attach(&root, &b);
  Attach(&root, &c);
  std::array<SimTime, kNumSpanKinds> out{};
  ComputeCriticalPath(&root, out.data());
  SimTime total = 0;
  for (SimTime v : out) total += v;
  EXPECT_EQ(total, root.t1 - root.t0);
}

TEST(CriticalPathTest, ConcurrentSiblingSkippedAndOverlapClipped) {
  // parent [0,100]: c1 [10,50]; c2 [20,40] fully covered by c1 (skipped);
  // c3 [30,80] overlaps the cursor — only its remainder [50,80] counts,
  // charged to c3's kind without recursing into its children.
  SpanRecord root = Node(1, SpanKind::kEvictBatch, 0, 100);
  SpanRecord c1 = Node(2, SpanKind::kUnmapVictims, 10, 50);
  SpanRecord c2 = Node(3, SpanKind::kAccounting, 20, 40);
  SpanRecord c3 = Node(4, SpanKind::kShootdownWait, 30, 80);
  SpanRecord c3kid = Node(5, SpanKind::kIpiDeliver, 35, 75);
  Attach(&root, &c1);
  Attach(&root, &c2);
  Attach(&root, &c3);
  Attach(&c3, &c3kid);
  std::array<SimTime, kNumSpanKinds> out{};
  ComputeCriticalPath(&root, out.data());
  EXPECT_EQ(Phase(out, SpanKind::kUnmapVictims), 40);
  EXPECT_EQ(Phase(out, SpanKind::kAccounting), 0);      // concurrent: skipped
  EXPECT_EQ(Phase(out, SpanKind::kShootdownWait), 30);  // clipped [50,80]
  EXPECT_EQ(Phase(out, SpanKind::kIpiDeliver), 0);      // no recursion when clipped
  EXPECT_EQ(Phase(out, SpanKind::kEvictBatch), 30);     // gap [0,10] + tail [80,100]
}

TEST(CriticalPathTest, RecursesIntoNonOverlappedChild) {
  SpanRecord root = Node(1, SpanKind::kFault, 0, 100);
  SpanRecord batch = Node(2, SpanKind::kEvictBatch, 10, 90);
  SpanRecord write = Node(3, SpanKind::kRdmaWrite, 20, 80);
  Attach(&root, &batch);
  Attach(&batch, &write);
  std::array<SimTime, kNumSpanKinds> out{};
  ComputeCriticalPath(&root, out.data());
  EXPECT_EQ(Phase(out, SpanKind::kFault), 20);
  EXPECT_EQ(Phase(out, SpanKind::kEvictBatch), 20);
  EXPECT_EQ(Phase(out, SpanKind::kRdmaWrite), 60);
}

TEST(CriticalPathTest, BlockedOnEvictionShape) {
  // The headline causal shape: a fault parks in free_wait until an eviction
  // batch publishes headroom. The wait carries the link; the attribution
  // charges the park to free_wait on the fault's own critical path.
  SpanRecord root = Node(10, SpanKind::kFault, 0, 200);
  SpanRecord entry = Node(11, SpanKind::kEntry, 0, 5);
  SpanRecord wait = Node(12, SpanKind::kFreeWait, 5, 120);
  wait.link = 99;  // the eviction batch's span id
  wait.link_t = 118;
  SpanRecord alloc = Node(13, SpanKind::kAlloc, 120, 130);
  SpanRecord read = Node(14, SpanKind::kRdmaRead, 130, 190);
  Attach(&root, &entry);
  Attach(&root, &wait);
  Attach(&root, &alloc);
  Attach(&root, &read);
  std::array<SimTime, kNumSpanKinds> out{};
  ComputeCriticalPath(&root, out.data());
  EXPECT_EQ(Phase(out, SpanKind::kFreeWait), 115);
  EXPECT_EQ(Phase(out, SpanKind::kRdmaRead), 60);
  EXPECT_EQ(Phase(out, SpanKind::kFault), 10);  // tail [190,200]
  EXPECT_EQ(wait.link, 99u);
}

TEST(CriticalPathTest, ChildrenSortedByStartNotInsertionOrder) {
  SpanRecord root = Node(1, SpanKind::kFault, 0, 100);
  SpanRecord late = Node(2, SpanKind::kAccounting, 60, 90);
  SpanRecord early = Node(3, SpanKind::kEntry, 0, 50);
  Attach(&root, &late);  // inserted out of order
  Attach(&root, &early);
  std::array<SimTime, kNumSpanKinds> out{};
  ComputeCriticalPath(&root, out.data());
  EXPECT_EQ(Phase(out, SpanKind::kEntry), 50);
  EXPECT_EQ(Phase(out, SpanKind::kAccounting), 30);
  EXPECT_EQ(Phase(out, SpanKind::kFault), 20);
}

TEST(HistogramSlotTest, SlotForAndLowerBoundRoundTrip) {
  for (int64_t v : {0LL, 1LL, 100LL, 4096LL, 70000LL, 1000000LL, 123456789LL}) {
    int slot = Histogram::SlotFor(v);
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, Histogram::kNumSlots);
    EXPECT_LE(Histogram::SlotLowerBound(slot), v);
    if (slot + 1 < Histogram::kNumSlots) {
      EXPECT_GT(Histogram::SlotLowerBound(slot + 1), v);
    }
  }
}

TEST(HistogramSlotTest, SlotsAreMonotonic) {
  int64_t prev = Histogram::SlotLowerBound(0);
  for (int s = 1; s < Histogram::kNumSlots; ++s) {
    int64_t b = Histogram::SlotLowerBound(s);
    EXPECT_GE(b, prev) << "slot " << s;
    prev = b;
  }
}

TEST(HistogramSlotTest, P999AndSummary) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<uint64_t>(i) * 1000);
  double p999 = h.Percentile(99.9);
  EXPECT_GE(p999, 990000.0);
  EXPECT_LE(p999, 1000000.0);
  EXPECT_NE(h.Summary().find("p99.9="), std::string::npos);
}

TEST(SpanTracerTest, DisabledHooksAreNoOps) {
  ASSERT_EQ(SpanTracer::Get(), nullptr);
  EXPECT_FALSE(SpanBegin(SpanKind::kFault, 0, 1));
  SpanEnd(SpanHandle{});
  EXPECT_EQ(SpanLeaf(SpanKind::kAlloc, 0, 0, 1), 0u);
  EXPECT_EQ(SpanLeafUnder(SpanHandle{}, SpanKind::kAlloc, 0, 1, 0, 1), 0u);
}

Task<> OneFault(SpanTracer& st, uint64_t page, SimTime read_ns, SimTime tail_ns) {
  SpanHandle root = st.Begin(SpanKind::kFault, /*actor=*/0, page);
  SimTime r0 = Engine::current().now();
  co_await Delay{read_ns};
  st.Leaf(SpanKind::kRdmaRead, r0, 0, page);
  co_await Delay{tail_ns};
  st.End(root);
}

TEST(SpanTracerTest, RootOpFinalizesIntoAggregates) {
  SpanTracer st(SpanTracer::Options{});
  st.Install();
  Engine eng;
  eng.Spawn(OneFault(st, 42, /*read_ns=*/70, /*tail_ns=*/30));
  eng.Run();
  st.Uninstall();

  EXPECT_EQ(st.ops(SpanKind::kFault), 1u);
  EXPECT_EQ(st.spans_total(), 2u);
  EXPECT_EQ(st.open_spans(), 0u);
  SpanTailSummary tail = st.Tail(SpanKind::kFault);
  EXPECT_EQ(tail.count, 1u);
  EXPECT_EQ(Phase(tail.phase_ns, SpanKind::kRdmaRead), 70);
  EXPECT_EQ(Phase(tail.phase_ns, SpanKind::kFault), 30);
  EXPECT_EQ(tail.latency.max(), 100);
}

Task<> NestedOps(SpanTracer& st) {
  SpanHandle root = st.Begin(SpanKind::kEvictBatch, 0, kTraceNoPage);
  co_await Delay{10};
  SpanHandle inner = st.Begin(SpanKind::kRdmaWrite, 0, kTraceNoPage);
  EXPECT_EQ(st.CurrentContext().rec, inner.rec);
  co_await Delay{40};
  st.End(inner);
  EXPECT_EQ(st.CurrentContext().rec, root.rec);
  co_await Delay{30};
  st.End(root);
}

TEST(SpanTracerTest, NestedSpansPopInOrder) {
  SpanTracer st(SpanTracer::Options{});
  st.Install();
  Engine eng;
  eng.Spawn(NestedOps(st));
  eng.Run();
  st.Uninstall();
  EXPECT_EQ(st.ops(SpanKind::kEvictBatch), 1u);
  EXPECT_EQ(st.open_spans(), 0u);
  SpanTailSummary tail = st.Tail(SpanKind::kEvictBatch);
  EXPECT_EQ(Phase(tail.phase_ns, SpanKind::kRdmaWrite), 40);
  EXPECT_EQ(Phase(tail.phase_ns, SpanKind::kEvictBatch), 40);
}

Task<> BackpressurePause(SpanTracer& st) {
  SimTime b0 = Engine::current().now();
  co_await Delay{25};
  // No operation open in this task: the leaf becomes its own root op.
  st.Leaf(SpanKind::kBackpressure, b0, /*actor=*/1, kTraceNoPage);
}

TEST(SpanTracerTest, LeafWithNoOpenSpanBecomesItsOwnRoot) {
  SpanTracer st(SpanTracer::Options{});
  st.Install();
  Engine eng;
  eng.Spawn(BackpressurePause(st));
  eng.Run();
  st.Uninstall();
  EXPECT_EQ(st.ops(SpanKind::kBackpressure), 1u);
  EXPECT_EQ(st.open_spans(), 0u);
  EXPECT_EQ(st.Tail(SpanKind::kBackpressure).latency.max(), 25);
}

TEST(SpanTracerTest, ZeroDurationLeavesSkipped) {
  // No engine: now == 0, so a leaf "ending now" at t0=0 has zero duration.
  SpanTracer st(SpanTracer::Options{});
  st.Install();
  SpanHandle root = st.Begin(SpanKind::kFault, 0, 7);
  EXPECT_EQ(st.Leaf(SpanKind::kMmLocks, 0, 0, 7), 0u);
  EXPECT_EQ(st.LeafUnder(root, SpanKind::kAlloc, 20, 20, 0, 7), 0u);
  st.End(root);
  st.Uninstall();
  EXPECT_EQ(st.spans_total(), 1u);  // just the root
}

TEST(SpanTracerTest, DetachedRootWithPushedContext) {
  SpanTracer st(SpanTracer::Options{});
  st.Install();
  SpanHandle batch = st.BeginDetached(SpanKind::kEvictBatch, 9, kTraceNoPage);
  ASSERT_TRUE(batch);
  EXPECT_FALSE(st.CurrentContext());  // detached: not on the context stack
  st.PushContext(batch);
  EXPECT_EQ(st.CurrentContext().rec, batch.rec);
  st.LeafUnder(batch, SpanKind::kUnmapVictims, 0, 40, 9, kTraceNoPage);
  st.PopContext();
  EXPECT_FALSE(st.CurrentContext());
  st.EndDetached(batch, /*arg=*/32);
  st.Uninstall();
  EXPECT_EQ(st.ops(SpanKind::kEvictBatch), 1u);
  EXPECT_EQ(st.spans_total(), 2u);
  EXPECT_EQ(st.open_spans(), 0u);
}

TEST(SpanTracerTest, CausalRegistriesCaptureAndLink) {
  SpanTracer st(SpanTracer::Options{});
  st.Install();
  SpanHandle batch = st.Begin(SpanKind::kEvictBatch, 2, kTraceNoPage);
  uint64_t batch_id = batch.rec->id;
  st.NoteHeadroomPublisher(batch);
  st.NoteTenantRelease(5, batch);
  EXPECT_EQ(st.headroom_publisher().id, batch_id);
  EXPECT_EQ(st.tenant_release(5).id, batch_id);
  EXPECT_EQ(st.tenant_release(4).id, 0u);  // untouched tenant: no link
  st.End(batch);

  SpanHandle fault = st.Begin(SpanKind::kFault, 0, 11);
  uint64_t leaf = st.LeafUnder(fault, SpanKind::kFreeWait, 0, 30, 0, 11,
                               st.headroom_publisher());
  EXPECT_NE(leaf, 0u);
  EXPECT_EQ(fault.rec->last_child->link, batch_id);
  st.End(fault);
  st.Uninstall();
  EXPECT_EQ(st.links_total(), 1u);
}

TEST(SpanTracerTest, PageSpanRegistryTracksInFlightFaults) {
  SpanTracer st(SpanTracer::Options{});
  st.Install();
  SpanHandle fault = st.Begin(SpanKind::kFault, 0, 77);
  st.NotePageSpan(77, fault);
  EXPECT_EQ(st.page_span(77).id, fault.rec->id);
  st.ErasePageSpan(77);
  EXPECT_EQ(st.page_span(77).id, 0u);
  st.End(fault);
  st.Uninstall();
}

TEST(SpanTracerTest, BreakerRegistryPerChannel) {
  SpanTracer st(SpanTracer::Options{});
  st.Install();
  SpanHandle op = st.Begin(SpanKind::kFault, 1, 3);
  st.NoteBreakerOpen(1, op);
  EXPECT_EQ(st.breaker_open(1).id, op.rec->id);
  EXPECT_EQ(st.breaker_open(0).id, 0u);
  st.End(op);
  st.Uninstall();
}

Task<> TimedFaults(SpanTracer& st, std::vector<SimTime> latencies) {
  for (SimTime lat : latencies) {
    SpanHandle h = st.Begin(SpanKind::kFault, 0, 1);
    co_await Delay{lat};
    st.End(h);
  }
}

TEST(SpanTracerTest, ExemplarReservoirKeepsWorstK) {
  SpanTracer st(SpanTracer::Options{.out_path = "", .top_k = 2});
  st.Install();
  Engine eng;
  eng.Spawn(TimedFaults(st, {50, 300, 100, 700, 20}));
  eng.Run();
  st.Uninstall();
  const std::vector<SpanExemplar>& ex = st.Exemplars(SpanKind::kFault);
  ASSERT_EQ(ex.size(), 2u);
  EXPECT_EQ(ex[0].latency_ns, 700);
  EXPECT_EQ(ex[1].latency_ns, 300);
}

TEST(SpanTracerTest, DeterministicIdsAndFingerprint) {
  auto run = [] {
    SpanTracer st(SpanTracer::Options{});
    st.Install();
    Engine eng;
    eng.Spawn(TimedFaults(st, {40, 41, 42}));
    eng.Run();
    st.Uninstall();
    return st.FingerprintSummary();
  };
  std::string a = run();
  std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("hash="), std::string::npos);
  EXPECT_NE(a.find("ops.fault=3"), std::string::npos);
}

Task<> BandedFaults(SpanTracer& st) {
  // 1000 fast ops (4-8us, read-dominated) + 12 slow ops (100-188us,
  // backoff-dominated). The latencies are spread so p50/p90/p99 land in
  // distinct histogram slots: the p50 band is made of fast ops, the p99
  // band of slow ones.
  for (int i = 0; i < 1000; ++i) {
    SpanHandle h = st.Begin(SpanKind::kFault, 0, 1);
    SimTime r0 = Engine::current().now();
    co_await Delay{3000 + i * 4};
    st.Leaf(SpanKind::kRdmaRead, r0, 0, 1);
    co_await Delay{1000};
    st.End(h);
  }
  for (int i = 0; i < 12; ++i) {
    SpanHandle h = st.Begin(SpanKind::kFault, 0, 2);
    SimTime r0 = Engine::current().now();
    co_await Delay{4000};
    st.Leaf(SpanKind::kRdmaRead, r0, 0, 2);
    SimTime b0 = Engine::current().now();
    co_await Delay{88000 + i * 8000};
    st.Leaf(SpanKind::kRetryBackoff, b0, 0, 2);
    co_await Delay{8000};
    st.End(h);
  }
}

TEST(SpanTracerTest, BandsConditionOnLatency) {
  // The p50 band must attribute to the read; the p99 band to the backoff
  // that only the slow ops contain.
  SpanTracer st(SpanTracer::Options{});
  st.Install();
  Engine eng;
  eng.Spawn(BandedFaults(st));
  eng.Run();
  st.Uninstall();
  SpanTailSummary tail = st.Tail(SpanKind::kFault);
  EXPECT_EQ(tail.count, 1012u);
  const SpanTailBand& p50 = tail.bands[0];
  const SpanTailBand& p99 = tail.bands[2];
  ASSERT_GT(p50.ops, 0u);
  ASSERT_GT(p99.ops, 0u);
  EXPECT_GT(p50.Share(SpanKind::kRdmaRead), 0.5);
  EXPECT_GT(p99.Share(SpanKind::kRetryBackoff), 0.5);
  EXPECT_GT(p99.threshold_ns, p50.threshold_ns);
}

}  // namespace
}  // namespace magesim
