#include "src/paging/kernel.h"

#include <gtest/gtest.h>

#include "src/paging/kernels.h"
#include "src/sim/engine.h"

namespace magesim {
namespace {

struct Rig {
  explicit Rig(KernelConfig cfg, uint64_t local = 2048, uint64_t wss = 4096)
      : params(cfg.virtualized ? VirtualizedParams() : BareMetalParams()),
        topo(params),
        tlb(topo),
        nic(params),
        kernel(cfg, topo, tlb, nic, local, wss) {
    std::vector<CoreId> cores;
    for (int i = 0; i < 8; ++i) cores.push_back(i);
    tlb.SetTargetCores(cores);
  }
  Engine engine;
  MachineParams params;
  Topology topo;
  TlbShootdownManager tlb;
  RdmaNic nic;
  Kernel kernel;
};

// Residency is Bresenham-spread across the working set; helpers below find
// concrete resident/non-resident pages.
std::vector<uint64_t> ResidentVpns(Kernel& k, size_t n) {
  std::vector<uint64_t> out;
  for (uint64_t v = 0; v < k.wss_pages() && out.size() < n; ++v) {
    if (k.page_table().At(v).present) out.push_back(v);
  }
  return out;
}

uint64_t FirstNonResident(Kernel& k) {
  for (uint64_t v = 0; v < k.wss_pages(); ++v) {
    if (!k.page_table().At(v).present) return v;
  }
  return 0;
}

TEST(KernelTest, PrepopulateMapsAndTracks) {
  Rig rig(MageLibConfig());
  rig.kernel.Prepopulate(1000);
  EXPECT_EQ(rig.kernel.page_table().mapped_pages(), 1000u);
  EXPECT_EQ(rig.kernel.accounting().tracked_pages(), 1000u);
  EXPECT_EQ(rig.kernel.free_pages(), 2048u - 1000u);
}

TEST(KernelTest, FastAccessSetsBits) {
  Rig rig(MageLibConfig());
  rig.kernel.Prepopulate(100);
  uint64_t v = ResidentVpns(rig.kernel, 1)[0];
  EXPECT_TRUE(rig.kernel.TryFastAccess(v, /*write=*/false));
  EXPECT_TRUE(rig.kernel.page_table().At(v).accessed);
  EXPECT_FALSE(rig.kernel.page_table().At(v).dirty);
  EXPECT_TRUE(rig.kernel.TryFastAccess(v, /*write=*/true));
  EXPECT_TRUE(rig.kernel.page_table().At(v).dirty);
  EXPECT_FALSE(rig.kernel.TryFastAccess(FirstNonResident(rig.kernel), false));
}

TEST(KernelTest, SingleFaultLatencyNearUncontendedBudget) {
  // MageLib's uncontended fault = entry + alloc + 3.9us RDMA + map +
  // accounting: ~4.5 us, far below any contended case.
  Rig rig(MageLibConfig());
  rig.kernel.Prepopulate(100);
  rig.kernel.Start(8);
  SimTime elapsed = -1;
  rig.engine.Spawn([](Rig& rig, SimTime& elapsed) -> Task<> {
    SimTime t0 = Engine::current().now();
    co_await rig.kernel.Fault(0, 500, false);
    elapsed = Engine::current().now() - t0;
  }(rig, elapsed));
  rig.engine.RequestShutdown();
  rig.engine.Run();
  EXPECT_GT(elapsed, 3900);
  EXPECT_LT(elapsed, 7000);
  EXPECT_TRUE(rig.kernel.page_table().At(500).present);
  EXPECT_EQ(rig.kernel.stats().faults, 1u);
}

TEST(KernelTest, FaultDedupIssuesOneRead) {
  Rig rig(MageLibConfig());
  rig.kernel.Prepopulate(100);
  WaitGroup wg;
  for (int i = 0; i < 4; ++i) {
    wg.Add();
    rig.engine.Spawn([](Rig& rig, WaitGroup& wg, CoreId c) -> Task<> {
      co_await rig.kernel.Fault(c, 700, false);
      wg.Done();
    }(rig, wg, i));
  }
  rig.engine.Run();
  EXPECT_EQ(rig.kernel.stats().faults, 1u);
  EXPECT_EQ(rig.kernel.stats().dedup_waits, 3u);
  EXPECT_EQ(rig.nic.reads_posted(), 1u);
}

TEST(KernelTest, EvictBatchFreesPagesAndWritesDirty) {
  Rig rig(MageLibConfig());
  rig.kernel.Prepopulate(1000);
  // Dirty the first 50 resident pages.
  for (uint64_t v = 0; v < 50; ++v) rig.kernel.TryFastAccess(v, /*write=*/true);
  uint64_t free_before = rig.kernel.free_pages();
  rig.engine.Spawn([](Rig& rig) -> Task<> {
    size_t got = co_await rig.kernel.EvictBatchSequential(0, 7, 256);
    EXPECT_EQ(got, 256u);
  }(rig));
  rig.engine.Run();
  EXPECT_EQ(rig.kernel.free_pages(), free_before + 256);
  EXPECT_EQ(rig.kernel.stats().evicted_pages, 256u);
  // Only dirtied pages hit the write channel; the rest reclaim clean.
  EXPECT_LE(rig.nic.writes_posted(), 50u);
  EXPECT_GT(rig.kernel.stats().clean_reclaims, 0u);
  EXPECT_GT(rig.tlb.shootdowns(), 0u);
}

TEST(KernelTest, SecondChanceProtectsHotPages) {
  Rig rig(MageLibConfig());
  rig.kernel.Prepopulate(512);
  // Half the resident pages become hot; the rest stay cold.
  std::vector<uint64_t> resident = ResidentVpns(rig.kernel, 512);
  for (size_t i = 0; i < 256; ++i) rig.kernel.TryFastAccess(resident[i], false);
  rig.engine.Spawn([](Rig& rig) -> Task<> {
    co_await rig.kernel.EvictBatchSequential(0, 7, 128);
  }(rig));
  rig.engine.Run();
  // Hot pages survive.
  uint64_t hot_evicted = 0;
  for (size_t i = 0; i < 256; ++i) {
    if (!rig.kernel.page_table().At(resident[i]).present) ++hot_evicted;
  }
  EXPECT_EQ(hot_evicted, 0u);
}

TEST(KernelTest, MageFaultPathNeverSyncEvicts) {
  KernelConfig cfg = MageLibConfig();
  Rig rig(cfg, /*local=*/512, /*wss=*/4096);
  rig.kernel.Prepopulate(512 - 64);
  rig.kernel.Start(8);
  WaitGroup wg;
  for (int t = 0; t < 8; ++t) {
    wg.Add();
    rig.engine.Spawn([](Rig& rig, WaitGroup& wg, int t) -> Task<> {
      for (uint64_t i = 0; i < 200; ++i) {
        uint64_t vpn = 512 + static_cast<uint64_t>(t) * 400 + i;
        co_await rig.kernel.Fault(t, vpn, false);
      }
      wg.Done();
    }(rig, wg, t));
  }
  rig.engine.Spawn([](Rig& rig, WaitGroup& wg) -> Task<> {
    co_await wg.Wait();
    Engine::current().RequestShutdown();
    rig.kernel.accounting();  // keep rig alive through shutdown
  }(rig, wg));
  rig.engine.Run();
  EXPECT_EQ(rig.kernel.stats().sync_evictions, 0u);
  // Some target pages may have been prepopulated (spread residency); the
  // bulk must still be real major faults.
  EXPECT_GT(rig.kernel.stats().faults, 1300u);
  EXPECT_GT(rig.kernel.stats().evicted_pages, 800u);
}

TEST(KernelTest, HermitFaultPathSyncEvictsUnderPressure) {
  KernelConfig cfg = HermitConfig();
  cfg.num_evictors = 1;  // starve the async path
  Rig rig(cfg, /*local=*/512, /*wss=*/8192);
  rig.kernel.Prepopulate(512 - 20);
  rig.kernel.Start(8);
  WaitGroup wg;
  for (int t = 0; t < 8; ++t) {
    wg.Add();
    rig.engine.Spawn([](Rig& rig, WaitGroup& wg, int t) -> Task<> {
      for (uint64_t i = 0; i < 150; ++i) {
        uint64_t vpn = 600 + static_cast<uint64_t>(t) * 600 + i;
        co_await rig.kernel.Fault(t, vpn, false);
      }
      wg.Done();
    }(rig, wg, t));
  }
  rig.engine.Spawn([](WaitGroup& wg) -> Task<> {
    co_await wg.Wait();
    Engine::current().RequestShutdown();
  }(wg));
  rig.engine.Run();
  EXPECT_GT(rig.kernel.stats().sync_evictions, 0u);
}

TEST(KernelTest, InstantReclaimMakesPageFaultAgain) {
  Rig rig(MageLibConfig());
  rig.kernel.Prepopulate(100);
  uint64_t v = ResidentVpns(rig.kernel, 1)[0];
  EXPECT_TRUE(rig.kernel.TryFastAccess(v, false));
  rig.kernel.InstantReclaim(v);
  EXPECT_FALSE(rig.kernel.TryFastAccess(v, false));
  EXPECT_EQ(rig.kernel.accounting().tracked_pages(), 99u);
}

TEST(KernelTest, IdealVariantFaultIsPureRdma) {
  Rig rig(IdealConfig());
  rig.kernel.Prepopulate(100);
  SimTime elapsed = -1;
  rig.engine.Spawn([](Rig& rig, SimTime& elapsed) -> Task<> {
    SimTime t0 = Engine::current().now();
    co_await rig.kernel.Fault(0, 2000, false);
    elapsed = Engine::current().now() - t0;
  }(rig, elapsed));
  rig.engine.Run();
  EXPECT_NEAR(static_cast<double>(elapsed), 3900.0, 60.0);
}

TEST(KernelTest, IdealVariantNeverRunsOutOfPages) {
  Rig rig(IdealConfig(), /*local=*/256, /*wss=*/4096);
  rig.kernel.Prepopulate(200);
  WaitGroup wg;
  wg.Add();
  rig.engine.Spawn([](Rig& rig, WaitGroup& wg) -> Task<> {
    for (uint64_t v = 300; v < 1800; ++v) {
      co_await rig.kernel.Fault(0, v, false);
    }
    wg.Done();
  }(rig, wg));
  rig.engine.Run();
  EXPECT_GE(rig.kernel.stats().faults, 1400u);  // minus spread-resident hits
  EXPECT_LE(rig.kernel.stats().faults, 1500u);
  EXPECT_EQ(rig.kernel.stats().sync_evictions, 0u);
  EXPECT_EQ(rig.kernel.stats().free_page_waits, 0u);
}

TEST(KernelsTest, PresetsAreInternallyConsistent) {
  for (const auto& cfg : AllSystemConfigs()) {
    if (cfg.variant == Variant::kMageLib || cfg.variant == Variant::kMageLnx) {
      EXPECT_FALSE(cfg.allow_sync_eviction) << cfg.name;
      EXPECT_TRUE(cfg.pipelined_eviction) << cfg.name;
      EXPECT_EQ(cfg.accounting, AccountingPolicy::kPartitionedFifo) << cfg.name;
      EXPECT_EQ(cfg.evict_batch_pages, 256) << cfg.name;
    } else {
      EXPECT_TRUE(cfg.allow_sync_eviction) << cfg.name;
      EXPECT_FALSE(cfg.pipelined_eviction) << cfg.name;
      EXPECT_EQ(cfg.accounting, AccountingPolicy::kGlobalLru) << cfg.name;
    }
  }
  EXPECT_EQ(ConfigByName("hermit").variant, Variant::kHermit);
  EXPECT_THROW(ConfigByName("bogus"), std::invalid_argument);
  // Fastswap: pre-Hermit Linux design point.
  KernelConfig fs = FastswapConfig();
  EXPECT_EQ(fs.num_evictors, 1);
  EXPECT_TRUE(fs.allow_sync_eviction);
  EXPECT_FALSE(fs.feedback_evictors);
  EXPECT_EQ(ConfigByName("fastswap").name, "fastswap");
}

}  // namespace
}  // namespace magesim
