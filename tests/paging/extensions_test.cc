// Tests for the extension features: lazy TLB reconciliation, adaptive
// prefetch windows, alternative accounting policies under the full kernel,
// and alternative swap backends.
#include <gtest/gtest.h>

#include "src/core/farmem.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

RunResult RunScan(KernelConfig cfg, double ratio, int threads = 16, uint64_t pages = 16384,
                  SimTime compute = 500, MachineParams* hw = nullptr) {
  SeqScanWorkload wl({.region_pages = pages, .threads = threads, .passes = 2,
                      .compute_per_page_ns = compute});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = ratio;
  if (hw != nullptr) {
    opt.hw = *hw;
    opt.hw_overridden = true;
  }
  FarMemoryMachine m(opt, wl);
  return m.Run();
}

TEST(LazyTlbTest, EliminatesEvictionIpis) {
  KernelConfig lazy = MageLibConfig();
  lazy.lazy_tlb = true;
  lazy.high_watermark = 0.16;
  RunResult r = RunScan(lazy, 0.5);
  EXPECT_GT(r.evicted_pages, 1000u);
  EXPECT_EQ(r.ipis_sent, 0u);  // no shootdown traffic at all
  EXPECT_EQ(r.total_ops, 2u * 16384u);
}

TEST(LazyTlbTest, ReclaimStillKeepsUpWithFaults) {
  KernelConfig lazy = MageLibConfig();
  lazy.lazy_tlb = true;
  lazy.high_watermark = 0.16;
  lazy.low_watermark = 0.08;
  RunResult lazy_r = RunScan(lazy, 0.5, 16, 16384, 1000);
  RunResult ipi_r = RunScan(MageLibConfig(), 0.5, 16, 16384, 1000);
  // Within 2x of the IPI design on a moderate workload (ticks add latency
  // but remove shootdown work).
  EXPECT_LT(lazy_r.sim_seconds, ipi_r.sim_seconds * 2.0);
  EXPECT_EQ(lazy_r.faults + 0, lazy_r.faults);  // completed normally
}

TEST(LazyTlbTest, TickChargesFlushCostToAppCores) {
  KernelConfig lazy = MageLibConfig();
  lazy.lazy_tlb = true;
  SeqScanWorkload wl({.region_pages = 16384, .threads = 8, .passes = 2});
  FarMemoryMachine::Options opt;
  opt.kernel = lazy;
  opt.local_mem_ratio = 0.5;
  FarMemoryMachine m(opt, wl);
  m.Run();
  // Reconciliation flushes showed up as stolen time on application cores.
  EXPECT_GT(m.kernel().topology().core(0).stolen_total_ns(), 0);
}

TEST(AdaptivePrefetchTest, WindowGrowthReducesFaultsMoreThanFixedDepth) {
  KernelConfig shallow = MageLibConfig();
  shallow.prefetch = true;
  shallow.prefetch_window = 2;  // effectively fixed-shallow
  KernelConfig deep = MageLibConfig();
  deep.prefetch = true;
  deep.prefetch_window = 32;
  RunResult rs = RunScan(shallow, 0.7, 8, 16384, 2000);
  RunResult rd = RunScan(deep, 0.7, 8, 16384, 2000);
  EXPECT_LT(rd.faults, rs.faults);
  EXPECT_GT(rd.prefetched_pages, rs.prefetched_pages);
}

TEST(AccountingPolicyKernelTest, AllPoliciesCompleteUnderPressure) {
  for (AccountingPolicy p :
       {AccountingPolicy::kGlobalLru, AccountingPolicy::kPartitionedFifo,
        AccountingPolicy::kS3Fifo, AccountingPolicy::kMgLru}) {
    KernelConfig cfg = MageLibConfig();
    cfg.accounting = p;
    RunResult r = RunScan(cfg, 0.4);
    EXPECT_EQ(r.total_ops, 2u * 16384u) << static_cast<int>(p);
    EXPECT_GT(r.evicted_pages, 1000u) << static_cast<int>(p);
  }
}

TEST(BackendTest, SsdBackendHasHigherFaultLatencyThanRdma) {
  MachineParams ssd = NvmeBackendParams();
  MachineParams rdma = VirtualizedParams();
  RunResult r_ssd = RunScan(MageLibConfig(), 0.6, 8, 8192, 1000, &ssd);
  RunResult r_rdma = RunScan(MageLibConfig(), 0.6, 8, 8192, 1000, &rdma);
  EXPECT_GT(r_ssd.fault_latency.mean(), 4.0 * r_rdma.fault_latency.mean());
  EXPECT_GT(r_ssd.sim_seconds, r_rdma.sim_seconds);
}

TEST(BackendTest, ZswapBackendIsFasterThanRdma) {
  MachineParams z = ZswapBackendParams();
  MachineParams rdma = VirtualizedParams();
  RunResult r_z = RunScan(MageLibConfig(), 0.6, 8, 8192, 1000, &z);
  RunResult r_rdma = RunScan(MageLibConfig(), 0.6, 8, 8192, 1000, &rdma);
  EXPECT_LT(r_z.fault_latency.mean(), r_rdma.fault_latency.mean());
}

}  // namespace
}  // namespace magesim
