// Failure injection: NIC brownouts and degraded backends. The systems must
// stay correct (work conservation, no deadlock) and MAGE must degrade
// gracefully (backpressure instead of sync-eviction storms).
#include <gtest/gtest.h>

#include "src/core/farmem.h"
#include "src/workloads/dataframe.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

TEST(BrownoutTest, NicBrownoutSlowsOpsInsideWindowOnly) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  nic.InjectBrownout(10 * kMicrosecond, 20 * kMicrosecond, 0.25, 5 * kMicrosecond);
  std::vector<SimTime> latencies;
  auto body = [](RdmaNic& nic, std::vector<SimTime>& out) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      SimTime t0 = Engine::current().now();
      co_await nic.Read(kPageSize);
      out.push_back(Engine::current().now() - t0);
      // Jump to the middle of / past the brownout window.
      co_await Delay{11 * kMicrosecond};
    }
  };
  e.Spawn(body(nic, latencies));
  e.Run();
  ASSERT_EQ(latencies.size(), 3u);
  EXPECT_NEAR(static_cast<double>(latencies[0]), 3900, 100);   // before
  EXPECT_GT(latencies[1], 9 * kMicrosecond);                   // inside: +5us, 4x wire
  EXPECT_NEAR(static_cast<double>(latencies[2]), 3900, 100);   // after
}

TEST(BrownoutTest, WorkloadSurvivesBrownoutWithWorkConservation) {
  for (const auto& cfg : {MageLibConfig(), HermitConfig()}) {
    SeqScanWorkload wl({.region_pages = 12288, .threads = 8, .passes = 2,
                        .compute_per_page_ns = 500});
    FarMemoryMachine::Options opt;
    opt.kernel = cfg;
    opt.local_mem_ratio = 0.5;
    FarMemoryMachine m(opt, wl);
    // A severe brownout right in the middle of the run.
    m.nic().InjectBrownout(2 * kMillisecond, 6 * kMillisecond, 0.1, 30 * kMicrosecond);
    RunResult r = m.Run();
    EXPECT_EQ(r.total_ops, 2u * 12288u) << cfg.name;  // everything still served
    EXPECT_GT(r.fault_latency.max(), 30 * kMicrosecond) << cfg.name;
  }
}

TEST(BrownoutTest, MageDegradesWithoutSyncEvictionStorm) {
  SeqScanWorkload wl({.region_pages = 24576, .threads = 16, .passes = 2,
                      .compute_per_page_ns = 300});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.4;
  FarMemoryMachine m(opt, wl);
  m.nic().InjectBrownout(1 * kMillisecond, 8 * kMillisecond, 0.15, 20 * kMicrosecond);
  RunResult r = m.Run();
  // P1 holds even under backend failure: the fault path never evicts.
  EXPECT_EQ(r.sync_evictions, 0u);
  EXPECT_EQ(r.total_ops, 2u * 24576u);
}

TEST(DataframeTest, QueriesComputeRealResultsIndependentOfPlacement) {
  DataframeWorkload::Options o{
      .num_rows = 1 << 20, .threads = 8, .queries_per_thread = 2};
  DataframeWorkload local(o), far(o);
  {
    FarMemoryMachine::Options opt;
    opt.kernel = MageLibConfig();
    opt.local_mem_ratio = 1.0;
    FarMemoryMachine m(opt, local);
    m.Run();
  }
  {
    FarMemoryMachine::Options opt;
    opt.kernel = HermitConfig();
    opt.local_mem_ratio = 0.4;
    FarMemoryMachine m(opt, far);
    m.Run();
  }
  EXPECT_EQ(local.result_hash(), far.result_hash());
  EXPECT_EQ(local.rows_matched(), far.rows_matched());
  EXPECT_GT(local.rows_matched(), 0u);
}

TEST(DataframeTest, ColumnScansArePrefetchable) {
  auto faults = [](bool prefetch) {
    DataframeWorkload wl({.num_rows = 1 << 21, .threads = 8, .queries_per_thread = 1});
    KernelConfig cfg = MageLibConfig();
    cfg.prefetch = prefetch;
    FarMemoryMachine::Options opt;
    opt.kernel = cfg;
    opt.local_mem_ratio = 0.6;
    FarMemoryMachine m(opt, wl);
    return m.Run().faults;
  };
  uint64_t without = faults(false);
  uint64_t with = faults(true);
  EXPECT_LT(with * 2, without);  // sequential column streams prefetch well
}

}  // namespace
}  // namespace magesim
