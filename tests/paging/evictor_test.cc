// Eviction-path behavior: pipelined vs sequential evictors, prefetcher,
// watermark dynamics, and the properties the paper's design principles imply.
#include <gtest/gtest.h>

#include "src/core/farmem.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

RunResult RunScan(KernelConfig cfg, double ratio, int threads = 16, uint64_t pages = 16384,
                  int passes = 2, SimTime compute = 500) {
  SeqScanWorkload wl(
      {.region_pages = pages, .threads = threads, .passes = passes,
       .compute_per_page_ns = compute});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = ratio;
  FarMemoryMachine m(opt, wl);
  return m.Run();
}

TEST(EvictorTest, PipelinedBeatsSequentialUnderPressure) {
  // A write scan dirties every page: eviction must write back, and the
  // pipelined design hides those RDMA-write waits behind the other stages.
  // One evictor thread makes per-evictor eviction throughput the binding
  // constraint (with four, both designs over-provision at this scale).
  auto run = [](bool pipelined) {
    KernelConfig cfg = MageLibConfig();
    cfg.pipelined_eviction = pipelined;
    cfg.num_evictors = 1;
    SeqScanWorkload wl({.region_pages = 48 * 1024,
                        .threads = 32,
                        .passes = 1000,
                        .compute_per_page_ns = 100,
                        .write = true});
    FarMemoryMachine::Options opt;
    opt.kernel = cfg;
    opt.local_mem_ratio = 0.4;
    opt.time_limit = 30 * kMillisecond;
    opt.stats_warmup = 10 * kMillisecond;
    FarMemoryMachine m(opt, wl);
    return m.Run();
  };
  RunResult rp = run(true);
  RunResult rs = run(false);
  EXPECT_GT(rp.fault_mops, rs.fault_mops * 1.1);
}

TEST(EvictorTest, PipelinedEvictorKeepsFaultPathFreeOfTlbWork) {
  RunResult r = RunScan(MageLibConfig(), 0.5);
  // No sync eviction => no shootdown time attributed inside fault handling.
  EXPECT_EQ(r.sync_evictions, 0u);
  EXPECT_EQ(r.fault_breakdown.MeanPer("tlb", r.faults), 0.0);
  // Shootdowns happened, just on the eviction path.
  EXPECT_GT(r.tlb_shootdown_latency.count(), 0u);
}

TEST(EvictorTest, SequentialBaselineFallsBackToSyncEviction) {
  KernelConfig cfg = HermitConfig();
  RunResult r = RunScan(cfg, 0.3, 32, 32768, 3, 100);
  EXPECT_GT(r.sync_evictions, 0u);
  EXPECT_GT(r.fault_breakdown.MeanPer("tlb", r.faults), 0.0);
}

TEST(EvictorTest, EvictionKeepsUpNoFreePageStarvation) {
  // MAGE: fault path waits must be rare relative to faults under moderate
  // pressure (the EP sustains the FP).
  RunResult r = RunScan(MageLibConfig(), 0.5, 16, 16384, 2, 1000);
  EXPECT_GT(r.faults, 1000u);
  EXPECT_LT(static_cast<double>(r.free_page_waits), 0.2 * static_cast<double>(r.faults));
}

TEST(EvictorTest, CleanPagesSkipWriteback) {
  // A read-only scan produces clean victims: the write channel stays cold.
  RunResult r = RunScan(MageLibConfig(), 0.5);
  EXPECT_GT(r.evicted_pages, 1000u);
  EXPECT_LT(r.nic_write_gbps, r.nic_read_gbps / 10);
}

TEST(EvictorTest, DirtyPagesAreWrittenBack) {
  SeqScanWorkload wl({.region_pages = 8192, .threads = 8, .passes = 2});
  KernelConfig cfg = MageLibConfig();
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.5;
  FarMemoryMachine m(opt, wl);
  // Dirty everything resident before running so evictions must write.
  for (uint64_t v = 0; v < m.kernel().wss_pages(); ++v) {
    m.kernel().TryFastAccess(v, /*write=*/true);
  }
  RunResult r = m.Run();
  EXPECT_GT(r.nic_write_gbps, 0.0);
}

TEST(PrefetchTest, SequentialPatternCutsMajorFaults) {
  KernelConfig off = MageLibConfig();
  KernelConfig on = MageLibConfig();
  on.prefetch = true;
  RunResult r_off = RunScan(off, 0.7, 8, 16384, 2, 2000);
  RunResult r_on = RunScan(on, 0.7, 8, 16384, 2, 2000);
  EXPECT_LT(r_on.faults * 2, r_off.faults);
  EXPECT_GT(r_on.prefetched_pages, 1000u);
  // Prefetching must help, not hurt, MAGE (its EP absorbs the pressure).
  EXPECT_LE(r_on.sim_seconds, r_off.sim_seconds * 1.05);
}

TEST(PrefetchTest, RandomPatternDoesNotPrefetch) {
  // GUPS-style random faults have no stable stride: the prefetcher stays off.
  KernelConfig on = MageLibConfig();
  on.prefetch = true;
  FarMemoryMachine::Options opt;
  opt.kernel = on;
  opt.local_mem_ratio = 0.5;

  class RandomReads : public Workload {
   public:
    std::string name() const override { return "random"; }
    uint64_t wss_pages() const override { return 8192; }
    int num_threads() const override { return 4; }
    Task<> ThreadBody(AppThread& t, int tid) override {
      for (int i = 0; i < 2000; ++i) {
        co_await t.AccessPage(t.rng().NextU64(8192), false);
        t.Compute(500);
      }
    }
  };
  RandomReads wl;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_LT(r.prefetched_pages, r.faults / 10);
}

TEST(EvictorTest, FeedbackControllerScalesEvictors) {
  // Hermit's feedback config must still keep up on a moderate workload
  // without collapsing (it ramps evictors with pressure).
  RunResult r = RunScan(HermitConfig(), 0.6, 8, 8192, 2, 3000);
  EXPECT_GT(r.evicted_pages, 500u);
  EXPECT_GT(r.total_ops, 0u);
}

TEST(EvictorTest, WatermarksBoundFreePages) {
  SeqScanWorkload wl({.region_pages = 16384, .threads = 8, .passes = 3,
                      .compute_per_page_ns = 1000});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  FarMemoryMachine m(opt, wl);
  m.Run();
  // Post-run free pages are in a sane band: the evictors neither drained
  // everything nor ran away evicting the whole residency.
  uint64_t free = m.kernel().free_pages();
  EXPECT_GT(free, 0u);
  EXPECT_LT(free, m.kernel().local_pages() / 2);
}

}  // namespace
}  // namespace magesim
