// End-to-end fleet runs: a real workload over a 4-server, 2-replica far side
// survives a node-targeted crash with degraded reads, background rebuild
// converges, nothing is lost silently, and the invariant checker (including
// the fleet replica-safety rule) stays green. Plans naming servers outside
// the fleet are rejected at machine construction.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/farmem.h"
#include "src/workloads/gups.h"

namespace magesim {
namespace {

GupsWorkload::Options SmallGups() {
  GupsWorkload::Options o;
  o.total_pages = 4096;
  o.threads = 4;
  o.phase_change_at = 5 * kMillisecond;
  o.run_for = 10 * kMillisecond;
  o.prewarm_region_a = false;
  return o;
}

FarMemoryMachine::Options FleetOptions(uint64_t seed, int nodes, int replicas) {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.seed = seed;
  opt.check_final = true;
  opt.fleet.num_nodes = nodes;
  opt.fleet.replication = replicas;
  opt.fleet.rebuild_gbps = 50.0;
  return opt;
}

TEST(FleetIntegrationTest, HealthyFleetRunsCleanWithNoDegradedReads) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = FleetOptions(3, 4, 2);
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_EQ(r.fleet_nodes, 4u);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.faults, 0u);
  EXPECT_EQ(r.fleet_degraded_reads, 0u);
  EXPECT_EQ(r.fleet_slots_lost, 0u);
  EXPECT_EQ(r.fleet_silent_losses, 0u);
  EXPECT_EQ(r.fleet_rebuild_pending, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_FALSE(r.aborted);
}

TEST(FleetIntegrationTest, KillOneOfFourDegradedReadsThenRebuildConverges) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = FleetOptions(5, 4, 2);
  opt.fault_plan = "crash@2ms-3ms:node=1";
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_EQ(r.memnode_crashes, 1u);
  EXPECT_EQ(r.fault_windows, 1u);
  // Slots whose placement primary was server 1 were served degraded from the
  // surviving replica during the outage...
  EXPECT_GT(r.fleet_degraded_reads, 0u);
  // ...with k=2, a single crash loses nothing...
  EXPECT_EQ(r.fleet_slots_lost, 0u);
  EXPECT_EQ(r.pages_poisoned, 0u);
  // ...and after recovery the rebuild driver restored the replica set.
  EXPECT_GT(r.fleet_slots_rebuilt, 0u);
  EXPECT_EQ(r.fleet_rebuild_pending, 0u);
  EXPECT_EQ(r.fleet_silent_losses, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_FALSE(r.aborted);
  EXPECT_GT(r.total_ops, 0u);
}

TEST(FleetIntegrationTest, FleetRunIsDeterministicPerSeed) {
  auto run = [] {
    GupsWorkload wl(SmallGups());
    FarMemoryMachine::Options opt = FleetOptions(9, 4, 2);
    opt.fault_plan = "crash@2ms-3ms:node=2";
    opt.metrics.enabled = true;
    FarMemoryMachine m(opt, wl);
    RunResult r = m.Run();
    return std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>(
        r.total_ops, r.fleet_degraded_reads, r.fleet_slots_rebuilt, r.faults);
  };
  EXPECT_EQ(run(), run());
}

TEST(FleetIntegrationTest, PlanTargetingNodeOutsideFleetIsRejected) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = FleetOptions(3, 4, 2);
  opt.fault_plan = "crash@2ms-3ms:node=7";
  EXPECT_THROW({ FarMemoryMachine m(opt, wl); }, std::invalid_argument);
}

TEST(FleetIntegrationTest, SingleNodeMachineRejectsNodeTargetedPlans) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.seed = 1;
  opt.fault_plan = "crash@2ms-3ms:node=1";
  EXPECT_THROW({ FarMemoryMachine m(opt, wl); }, std::invalid_argument);
}

// The crash/recover transitions themselves are traced from SetAvailable, so
// a fleet chaos run carries them (and the crash-episode metric counts them).
TEST(FleetIntegrationTest, CrashEpisodeMetricCountsPerNodeTransitions) {
  GupsWorkload wl(SmallGups());
  FarMemoryMachine::Options opt = FleetOptions(11, 4, 2);
  opt.fault_plan = "crash@2ms-3ms:node=1;crash@5ms-6ms:node=3";
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_EQ(r.memnode_crashes, 2u);
  ASSERT_NE(m.fleet(), nullptr);
  EXPECT_EQ(m.fleet()->node(1).crash_episodes(), 1u);
  EXPECT_EQ(m.fleet()->node(3).crash_episodes(), 1u);
  EXPECT_EQ(m.fleet()->node(0).crash_episodes(), 0u);
  EXPECT_EQ(r.fleet_silent_losses, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
}

}  // namespace
}  // namespace magesim
