// Property: under a randomized crash/recover schedule — including crashes
// landing mid-rebuild — no slot is ever left with zero live replicas
// unreported. Loss is allowed (crash both holders of a k=2 slot), silence is
// not: the replica-safety sweep must stay clean at every step and the repair
// queue must fully drain once the chaos stops.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/hw/machine_params.h"
#include "src/hw/memnode.h"
#include "src/hw/rdma.h"
#include "src/resilience/rebuild.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"

namespace magesim {
namespace {

constexpr uint64_t kSlots = 512;

struct ChaosRig {
  MachineParams params = BareMetalParams();
  RdmaNic nic0{params, 0};
  MemoryNode node0{64ull << 20, 0};
  FleetManager fleet;
  RebuildDriver rebuild;

  ChaosRig(int nodes, int replicas, uint64_t seed)
      : fleet(nic0, node0, params,
              FleetManager::Options{.num_nodes = nodes,
                                    .replication = replicas,
                                    .seed = seed}),
        rebuild(fleet, RebuildOptions{.rebuild_gbps = 100.0}) {
    node0.RegisterSetup();
    for (uint64_t s = 0; s < kSlots; ++s) fleet.PrepopulateSlot(s);
  }
};

Task<> ChaosTask(ChaosRig* rig, uint64_t seed, int episodes,
                 uint64_t* max_silent) {
  Rng rng(seed);
  int nodes = rig->fleet.num_nodes();
  for (int e = 0; e < episodes; ++e) {
    co_await Delay{50 * kMicrosecond +
                   static_cast<SimTime>(rng.NextU64(400 * kMicrosecond))};
    int victim = static_cast<int>(rng.NextU64(static_cast<uint64_t>(nodes)));
    rig->fleet.node(victim).SetAvailable(false);
    rig->fleet.OnNodeCrash(victim);
    // The invariant must hold at the worst instant: right after the crash,
    // with rebuild possibly mid-burst.
    *max_silent = std::max(*max_silent, rig->fleet.CheckConsistency());
    co_await Delay{100 * kMicrosecond +
                   static_cast<SimTime>(rng.NextU64(600 * kMicrosecond))};
    rig->fleet.node(victim).SetAvailable(true);
    rig->fleet.OnNodeRecover(victim);
    *max_silent = std::max(*max_silent, rig->fleet.CheckConsistency());
  }
}

TEST(RebuildPropertyTest, CrashDuringRebuildNeverLosesSlotsSilently) {
  for (uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    ChaosRig rig(4, 2, seed);
    Engine eng;
    rig.rebuild.Start(eng);
    uint64_t max_silent = 0;
    eng.Spawn(ChaosTask(&rig, seed * 31 + 5, 12, &max_silent));
    eng.Run();

    EXPECT_EQ(max_silent, 0u) << "seed " << seed;
    EXPECT_EQ(rig.fleet.CheckConsistency(), 0u) << "seed " << seed;
    // Chaos over, every node live: the queue must drain to nothing and every
    // slot must be either fully re-replicated or (if both holders died in
    // one episode) surfaced as lost.
    EXPECT_EQ(rig.fleet.rebuild_pending(), 0u) << "seed " << seed;
    for (uint64_t s = 0; s < kSlots; ++s) {
      bool ok = rig.fleet.HasLiveCopy(s) || rig.fleet.IsLostReported(s);
      ASSERT_TRUE(ok) << "seed " << seed << " slot " << s;
      if (rig.fleet.HasLiveCopy(s)) {
        EXPECT_EQ(rig.fleet.RebuildTargetFor(s), -1)
            << "seed " << seed << " slot " << s << " still under-replicated";
      }
    }
    EXPECT_GT(rig.fleet.slots_rebuilt(), 0u) << "seed " << seed;
  }
}

// Two concurrent overlapping crashes of a k=2 fleet can lose slots; every
// loss must be surfaced, and survivors must still converge.
TEST(RebuildPropertyTest, DoubleCrashSurfacesLossAndConverges) {
  ChaosRig rig(4, 2, 77);
  Engine eng;
  rig.rebuild.Start(eng);
  eng.Spawn([](ChaosRig* r) -> Task<> {
    co_await Delay{100 * kMicrosecond};
    r->fleet.node(0).SetAvailable(false);
    r->fleet.OnNodeCrash(0);
    co_await Delay{20 * kMicrosecond};  // rebuild barely started
    r->fleet.node(1).SetAvailable(false);
    r->fleet.OnNodeCrash(1);
    EXPECT_EQ(r->fleet.CheckConsistency(), 0u);
    co_await Delay{500 * kMicrosecond};
    r->fleet.node(0).SetAvailable(true);
    r->fleet.OnNodeRecover(0);
    r->fleet.node(1).SetAvailable(true);
    r->fleet.OnNodeRecover(1);
  }(&rig));
  eng.Run();

  // Slots whose both desired holders were 0 and 1 are gone — and said so.
  EXPECT_GT(rig.fleet.slots_lost(), 0u);
  EXPECT_EQ(rig.fleet.CheckConsistency(), 0u);
  EXPECT_EQ(rig.fleet.rebuild_pending(), 0u);
  for (uint64_t s = 0; s < kSlots; ++s) {
    ASSERT_TRUE(rig.fleet.HasLiveCopy(s) || rig.fleet.IsLostReported(s)) << s;
  }
}

}  // namespace
}  // namespace magesim
