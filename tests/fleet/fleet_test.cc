// FleetManager replica-table semantics: prepopulation, read/write target
// resolution, crash bookkeeping (surfaced loss, never silent), repair
// queueing, and recovery-driven re-replication.
#include <gtest/gtest.h>

#include <memory>

#include "src/fleet/fleet.h"
#include "src/hw/machine_params.h"
#include "src/hw/memnode.h"
#include "src/hw/rdma.h"

namespace magesim {
namespace {

constexpr uint64_t kSlots = 256;

struct FleetFixture {
  MachineParams params = BareMetalParams();
  RdmaNic nic0{params, 0};
  MemoryNode node0{64ull << 20, 0};
  FleetManager fleet;

  explicit FleetFixture(int nodes, int replicas, uint64_t seed = 9)
      : fleet(nic0, node0, params,
              FleetManager::Options{.num_nodes = nodes,
                                    .replication = replicas,
                                    .seed = seed}) {
    node0.RegisterSetup();
    for (uint64_t s = 0; s < kSlots; ++s) fleet.PrepopulateSlot(s);
  }
};

TEST(FleetTest, PrepopulatedSlotsReadFromPrimaryUndegraded) {
  FleetFixture f(4, 2);
  for (uint64_t s = 0; s < kSlots; ++s) {
    FleetManager::ReadTarget t = f.fleet.ReadTargetFor(s);
    EXPECT_EQ(t.node, f.fleet.placement().PrimaryOf(s));
    EXPECT_FALSE(t.degraded);
    EXPECT_TRUE(f.fleet.HasLiveCopy(s));
  }
  EXPECT_EQ(f.fleet.CheckConsistency(), 0u);
}

TEST(FleetTest, CrashFailsOverToSurvivingReplicaDegraded) {
  FleetFixture f(4, 2);
  f.fleet.OnNodeCrash(1);
  for (uint64_t s = 0; s < kSlots; ++s) {
    ReplicaSet desired = f.fleet.DesiredReplicas(s);
    FleetManager::ReadTarget t = f.fleet.ReadTargetFor(s);
    if (desired.node[0] == 1) {
      ASSERT_GE(t.node, 0) << "slot " << s;
      EXPECT_NE(t.node, 1);
      EXPECT_TRUE(t.degraded);
    } else {
      EXPECT_EQ(t.node, desired.node[0]);
      EXPECT_FALSE(t.degraded);
    }
    // k=2: one crash never loses data.
    EXPECT_TRUE(f.fleet.HasLiveCopy(s));
  }
  EXPECT_EQ(f.fleet.slots_lost(), 0u);
  EXPECT_EQ(f.fleet.CheckConsistency(), 0u);
}

TEST(FleetTest, LosingEveryReplicaIsSurfacedNeverSilent) {
  FleetFixture f(2, 2);
  f.fleet.OnNodeCrash(0);
  f.fleet.OnNodeCrash(1);
  EXPECT_EQ(f.fleet.slots_lost(), kSlots);
  for (uint64_t s = 0; s < kSlots; ++s) {
    EXPECT_FALSE(f.fleet.HasLiveCopy(s));
    EXPECT_TRUE(f.fleet.IsLostReported(s));
    EXPECT_LT(f.fleet.ReadTargetFor(s).node, 0);
  }
  // Surfaced loss is accounted loss: the safety sweep stays clean.
  EXPECT_EQ(f.fleet.CheckConsistency(), 0u);
}

TEST(FleetTest, CrashQueuesRepairTowardLiveDesiredReplica) {
  FleetFixture f(4, 2);
  EXPECT_EQ(f.fleet.rebuild_pending(), 0u);
  f.fleet.OnNodeCrash(2);
  // Every slot that lost its node-2 copy is queued immediately; with k=2 the
  // only desired server missing the data is node 2 itself (dead), so the
  // rebuild target resolves to -1 until it comes back.
  EXPECT_GT(f.fleet.rebuild_pending(), 0u);
  f.fleet.OnNodeRecover(2);
  uint64_t slot = 0;
  ASSERT_TRUE(f.fleet.PopRepair(&slot));
  int target = f.fleet.RebuildTargetFor(slot);
  int source = f.fleet.SourceFor(slot);
  EXPECT_EQ(target, 2);
  ASSERT_GE(source, 0);
  EXPECT_NE(source, target);
  f.fleet.AddCopy(slot, target);
  EXPECT_EQ(f.fleet.RebuildTargetFor(slot), -1);
  EXPECT_EQ(f.fleet.slots_rebuilt(), 1u);
}

TEST(FleetTest, RepairQueueDeduplicatesSlots) {
  FleetFixture f(4, 2);
  f.fleet.EnqueueRepair(17);
  f.fleet.EnqueueRepair(17);
  f.fleet.EnqueueRepair(18);
  EXPECT_EQ(f.fleet.rebuild_pending(), 2u);
  uint64_t slot = 0;
  EXPECT_TRUE(f.fleet.PopRepair(&slot));
  EXPECT_EQ(slot, 17u);
  // Popped slots may be queued again (repair retry).
  f.fleet.EnqueueRepair(17);
  EXPECT_EQ(f.fleet.rebuild_pending(), 2u);
}

TEST(FleetTest, CommitWriteZeroAcksSurfacesLoss) {
  FleetFixture f(4, 2);
  f.fleet.CommitWrite(5, 0);
  EXPECT_TRUE(f.fleet.IsLostReported(5));
  EXPECT_EQ(f.fleet.slots_lost(), 1u);
  EXPECT_EQ(f.fleet.CheckConsistency(), 0u);
  // A later successful rewrite (the page was still locally resident) heals it.
  ReplicaSet targets = f.fleet.WriteTargetsFor(5);
  ASSERT_GT(targets.count, 0);
  f.fleet.CommitWrite(5, targets.Mask());
  EXPECT_FALSE(f.fleet.IsLostReported(5));
  EXPECT_TRUE(f.fleet.HasLiveCopy(5));
}

TEST(FleetTest, CommitWritePartialAckQueuesTheMissingReplica) {
  FleetFixture f(4, 3);
  ReplicaSet desired = f.fleet.DesiredReplicas(7);
  ASSERT_EQ(desired.count, 3);
  // Only the primary acked.
  f.fleet.CommitWrite(7, static_cast<uint16_t>(1u << desired.node[0]));
  EXPECT_FALSE(f.fleet.IsLostReported(7));
  EXPECT_GT(f.fleet.rebuild_pending(), 0u);
  EXPECT_EQ(f.fleet.RebuildTargetFor(7), desired.node[1]);
}

TEST(FleetTest, WriteTargetsSkipDeadServers) {
  FleetFixture f(4, 2);
  f.fleet.OnNodeCrash(0);
  for (uint64_t s = 0; s < kSlots; ++s) {
    ReplicaSet t = f.fleet.WriteTargetsFor(s);
    for (int i = 0; i < t.count; ++i) EXPECT_NE(t.node[i], 0);
  }
}

TEST(FleetTest, CrashEpisodesSumAcrossServers) {
  FleetFixture f(3, 2);
  f.fleet.node(1).SetAvailable(false);
  f.fleet.node(1).SetAvailable(true);
  f.fleet.node(2).SetAvailable(false);
  f.fleet.node(2).SetAvailable(true);
  EXPECT_EQ(f.fleet.crash_episodes(), 2u);
}

}  // namespace
}  // namespace magesim
