// Placement determinism: the consistent-hash map is a pure function of
// (seed, fleet size, replication, vnodes) — same inputs give an identical
// slot -> (node, replica) map on every run, and a whole fleet machine run
// with the same seed emits a byte-identical trace.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "src/core/farmem.h"
#include "src/fleet/placement.h"
#include "src/trace/trace.h"
#include "src/workloads/gups.h"

namespace magesim {
namespace {

constexpr uint64_t kSlots = 4096;

TEST(PlacementTest, SameSeedSameMap) {
  PlacementMap a(7, 4, 2);
  PlacementMap b(7, 4, 2);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  for (uint64_t slot = 0; slot < kSlots; ++slot) {
    ReplicaSet ra = a.ReplicasOf(slot);
    ReplicaSet rb = b.ReplicasOf(slot);
    ASSERT_EQ(ra.count, rb.count);
    for (int i = 0; i < ra.count; ++i) {
      ASSERT_EQ(ra.node[i], rb.node[i]) << "slot " << slot << " replica " << i;
    }
  }
}

TEST(PlacementTest, DifferentSeedDifferentMap) {
  PlacementMap a(7, 4, 2);
  PlacementMap b(8, 4, 2);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  uint64_t moved = 0;
  for (uint64_t slot = 0; slot < kSlots; ++slot) {
    if (a.PrimaryOf(slot) != b.PrimaryOf(slot)) ++moved;
  }
  EXPECT_GT(moved, 0u);
}

TEST(PlacementTest, ReplicasAreDistinctNodes) {
  PlacementMap p(3, 4, 3);
  for (uint64_t slot = 0; slot < kSlots; ++slot) {
    ReplicaSet r = p.ReplicasOf(slot);
    ASSERT_EQ(r.count, 3);
    std::set<int> distinct;
    for (int i = 0; i < r.count; ++i) {
      ASSERT_GE(r.node[i], 0);
      ASSERT_LT(r.node[i], 4);
      distinct.insert(r.node[i]);
    }
    ASSERT_EQ(distinct.size(), 3u) << "slot " << slot;
  }
}

TEST(PlacementTest, ReplicationClampedToFleetSize) {
  PlacementMap p(3, 2, 5);
  EXPECT_EQ(p.replication(), 2);
  PlacementMap q(3, 4, 0);
  EXPECT_EQ(q.replication(), 1);
}

TEST(PlacementTest, EveryNodeOwnsSomeSlots) {
  PlacementMap p(11, 4, 2);
  std::array<uint64_t, 4> primaries{};
  for (uint64_t slot = 0; slot < kSlots; ++slot) {
    primaries[static_cast<size_t>(p.PrimaryOf(slot))]++;
  }
  for (int n = 0; n < 4; ++n) {
    EXPECT_GT(primaries[static_cast<size_t>(n)], 0u) << "node " << n;
  }
}

// Tentpole determinism gate: a 4-server, 2-replica machine run is
// byte-identical across same-seed runs (events, order, timestamps).
TEST(PlacementTest, FleetMachineSameSeedByteIdenticalTrace) {
  auto run = [](uint64_t seed) {
    GupsWorkload wl(GupsWorkload::Options{.total_pages = 2048,
                                          .threads = 2,
                                          .phase_change_at = 4 * kMillisecond,
                                          .run_for = 8 * kMillisecond,
                                          .prewarm_region_a = false});
    FarMemoryMachine::Options opt;
    opt.kernel = MageLibConfig();
    opt.local_mem_ratio = 0.5;
    opt.seed = seed;
    opt.fleet.num_nodes = 4;
    opt.fleet.replication = 2;

    Tracer tracer;
    TraceHashSink hash;
    tracer.AddSink(&hash);
    tracer.Install();
    FarMemoryMachine m(opt, wl);
    m.Run();
    return std::pair<uint64_t, uint64_t>(hash.hash(), hash.total_events());
  };
  auto a = run(5);
  auto b = run(5);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  ASSERT_GT(a.second, 0u);
  auto c = run(6);
  EXPECT_NE(a.first, c.first);
}

}  // namespace
}  // namespace magesim
