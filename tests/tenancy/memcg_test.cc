// Unit tests for the memory-cgroup layer: spec parsing, hierarchical
// charge/uncharge accounting, limits, watermark hysteresis, and the
// vpn -> tenant mapping.
#include <gtest/gtest.h>

#include <string>

#include "src/mem/frame_pool.h"
#include "src/tenancy/memcg.h"
#include "src/tenancy/tenant_spec.h"

namespace magesim {
namespace {

TEST(TenantSpecTest, ParsesFullGrammar) {
  TenantSpec s;
  std::string err;
  ASSERT_TRUE(ParseTenantSpec("lat:4:0.4:0.3:latency=seqscan/2,pages=4096,passes=64", &s, &err))
      << err;
  EXPECT_EQ(s.name, "lat");
  EXPECT_EQ(s.weight, 4u);
  EXPECT_DOUBLE_EQ(s.hard_frac, 0.4);
  EXPECT_DOUBLE_EQ(s.soft_frac, 0.3);
  EXPECT_EQ(s.qos, QosClass::kLatency);
  EXPECT_EQ(s.workload, "seqscan");
  EXPECT_EQ(s.threads, 2);
  EXPECT_EQ(s.workload_opts.at("pages"), "4096");
  EXPECT_EQ(s.workload_opts.at("passes"), "64");
}

TEST(TenantSpecTest, SoftLimitIsOptionalAndPercentagesWork) {
  TenantSpec s;
  std::string err;
  ASSERT_TRUE(ParseTenantSpec("bg:1:80:batch=gups", &s, &err)) << err;
  EXPECT_EQ(s.name, "bg");
  EXPECT_DOUBLE_EQ(s.hard_frac, 0.8);  // "80" parses as a percentage
  EXPECT_DOUBLE_EQ(s.soft_frac, 0);    // derived later as 0.9 * hard
  EXPECT_EQ(s.qos, QosClass::kBatch);
  EXPECT_EQ(s.threads, 0);  // workload default
}

TEST(TenantSpecTest, RejectsMalformedSpecs) {
  TenantSpec s;
  std::string err;
  EXPECT_FALSE(ParseTenantSpec("", &s, &err));
  EXPECT_FALSE(ParseTenantSpec("noworkload:1:0.5:normal", &s, &err));
  EXPECT_FALSE(ParseTenantSpec("x:0:0.5:normal=gups", &s, &err));     // zero weight
  EXPECT_FALSE(ParseTenantSpec("x:1:0.5:fancy=gups", &s, &err));      // bad qos
  EXPECT_FALSE(ParseTenantSpec("x:1:nope:normal=gups", &s, &err));    // bad limit
}

TEST(TenantSpecTest, ListParsingValidatesUniqueNames) {
  TenancyOptions opts;
  std::string err;
  ASSERT_TRUE(ParseTenancyList("a:1:0.4:normal=gups;b:2:0.5:batch=seqscan", &opts, &err)) << err;
  EXPECT_TRUE(opts.enabled);
  ASSERT_EQ(opts.tenants.size(), 2u);
  EXPECT_EQ(opts.tenants[1].name, "b");

  TenancyOptions dup;
  EXPECT_FALSE(ParseTenancyList("a:1:0.4:normal=gups;a:2:0.5:batch=seqscan", &dup, &err));
}

TEST(MemCgroupTest, ChargesPropagateToRoot) {
  MemCgroup root(-1, "root", nullptr);
  MemCgroup a(0, "a", &root);
  MemCgroup b(1, "b", &root);
  root.Configure(0, 0, 1, QosClass::kNormal, 0, 0);
  a.Configure(100, 90, 1, QosClass::kNormal, 0, 0);
  b.Configure(100, 90, 1, QosClass::kNormal, 0, 0);

  a.Charge(10);
  b.Charge(5);
  EXPECT_EQ(a.usage(), 10u);
  EXPECT_EQ(b.usage(), 5u);
  EXPECT_EQ(root.usage(), 15u);

  a.Uncharge(4);
  EXPECT_EQ(a.usage(), 6u);
  EXPECT_EQ(root.usage(), 11u);
  EXPECT_EQ(a.peak_usage(), 10u);
  EXPECT_EQ(root.peak_usage(), 15u);
}

TEST(MemCgroupTest, HardLimitAndOverageTracking) {
  MemCgroup cg(0, "t", nullptr);
  cg.Configure(10, 8, 1, QosClass::kNormal, 0, 0);
  EXPECT_FALSE(cg.OverHard());
  cg.Charge(10);
  EXPECT_TRUE(cg.OverHard());  // at the limit blocks admission
  cg.Charge(3);                // in-flight faults may still land
  EXPECT_EQ(cg.max_overage(), 3u);
  cg.Uncharge(4);
  EXPECT_FALSE(cg.OverHard());
  EXPECT_EQ(cg.max_overage(), 3u);  // high-water mark sticks
}

TEST(MemCgroupTest, WatermarkHysteresis) {
  MemCgroup cg(0, "t", nullptr);
  // hard=100, low_wm=10, high_wm=20: pressured under 90 pages of headroom...
  cg.Configure(100, 0, 1, QosClass::kNormal, 10, 20);
  cg.Charge(85);
  EXPECT_FALSE(cg.pressured());
  cg.Charge(10);  // headroom 5 < low_wm
  EXPECT_TRUE(cg.pressured());
  EXPECT_TRUE(cg.NeedsEviction());
  cg.Uncharge(10);  // headroom 15: still inside the hysteresis band
  EXPECT_TRUE(cg.pressured());
  cg.Uncharge(10);  // headroom 25 >= high_wm clears it
  EXPECT_FALSE(cg.pressured());
}

TEST(MemCgroupTest, EffectiveSoftLimitClampsToConfigured) {
  MemCgroup cg(0, "t", nullptr);
  cg.Configure(100, 80, 1, QosClass::kNormal, 0, 0);
  EXPECT_EQ(cg.effective_soft_limit(), 80u);
  EXPECT_TRUE(cg.SetEffectiveSoftLimit(50));
  EXPECT_EQ(cg.effective_soft_limit(), 50u);
  EXPECT_TRUE(cg.SetEffectiveSoftLimit(200));  // relax clamps at soft
  EXPECT_EQ(cg.effective_soft_limit(), 80u);
  EXPECT_FALSE(cg.SetEffectiveSoftLimit(80));  // no-op change reports false
  EXPECT_EQ(cg.soft_adjusts(), 2u);

  cg.Charge(60);
  EXPECT_FALSE(cg.NeedsEviction());
  cg.SetEffectiveSoftLimit(40);
  EXPECT_TRUE(cg.NeedsEviction());
}

TenancyOptions ThreeTenants() {
  TenancyOptions opts;
  std::string err;
  // Resolved placement is normally filled by MultiTenantWorkload::Build; the
  // manager only needs vpn_base/vpn_pages here.
  EXPECT_TRUE(ParseTenancyList(
      "a:1:0.25:latency=seqscan;b:2:0.25:normal=seqscan;c:1:0.5:batch=gups", &opts, &err))
      << err;
  uint64_t base = 0;
  for (TenantSpec& s : opts.tenants) {
    s.vpn_base = base;
    s.vpn_pages = 100;
    s.thread_begin = 0;
    s.thread_end = 1;
    base += 100;
  }
  return opts;
}

TEST(TenancyManagerTest, TenantOfMapsVpnWindows) {
  TenancyOptions opts = ThreeTenants();
  TenancyManager mgr(opts, 400, 300, 0.1, 0.2);
  ASSERT_EQ(mgr.num_tenants(), 3);
  EXPECT_EQ(mgr.TenantOf(0), 0);
  EXPECT_EQ(mgr.TenantOf(99), 0);
  EXPECT_EQ(mgr.TenantOf(100), 1);
  EXPECT_EQ(mgr.TenantOf(199), 1);
  EXPECT_EQ(mgr.TenantOf(200), 2);
  EXPECT_EQ(mgr.TenantOf(299), 2);
}

TEST(TenancyManagerTest, ChargeStampsFrameAndTracksBijection) {
  TenancyOptions opts = ThreeTenants();
  TenancyManager mgr(opts, 400, 300, 0.1, 0.2);
  PageFrame f;
  f.pfn = 7;

  EXPECT_EQ(mgr.charged_tenant(150), -1);
  EXPECT_EQ(mgr.Charge(150, &f), 1);
  EXPECT_EQ(f.tenant, 1);
  EXPECT_EQ(mgr.charged_tenant(150), 1);
  EXPECT_EQ(mgr.cgroup(1).usage(), 1u);
  EXPECT_EQ(mgr.root().usage(), 1u);

  // A double charge is tolerated (usage stays sane) but counted for the
  // invariant checker.
  mgr.Charge(150, &f);
  EXPECT_EQ(mgr.double_charges(), 1u);
  EXPECT_EQ(mgr.cgroup(1).usage(), 1u);

  EXPECT_EQ(mgr.Uncharge(150, &f), 1);
  EXPECT_EQ(mgr.charged_tenant(150), -1);
  EXPECT_EQ(mgr.root().usage(), 0u);

  mgr.Uncharge(150, &f);
  EXPECT_EQ(mgr.missing_uncharges(), 1u);
}

TEST(TenancyManagerTest, PrefetchQosGate) {
  TenancyOptions opts = ThreeTenants();
  TenancyManager mgr(opts, 400, 300, 0.1, 0.2);
  // a: latency, hard=100; b: normal; c: batch.
  EXPECT_TRUE(mgr.AllowPrefetch(0, /*global_pressure=*/true));   // latency priority
  EXPECT_TRUE(mgr.AllowPrefetch(2, /*global_pressure=*/false));  // idle batch ok
  EXPECT_FALSE(mgr.AllowPrefetch(2, /*global_pressure=*/true));  // batch yields first

  // Push the latency tenant to its hard limit: even priority stops there.
  for (int i = 0; i < 100; ++i) mgr.Charge(static_cast<uint64_t>(i), nullptr);
  EXPECT_TRUE(mgr.cgroup(0).OverHard());
  EXPECT_FALSE(mgr.AllowPrefetch(0, false));
  EXPECT_GE(mgr.cgroup(0).prefetch_denied(), 1u);

  // Normal tenants are denied once over their effective soft limit.
  for (int i = 100; i < 195; ++i) mgr.Charge(static_cast<uint64_t>(i), nullptr);
  EXPECT_TRUE(mgr.cgroup(1).NeedsEviction());
  EXPECT_FALSE(mgr.AllowPrefetch(1, false));
}

TEST(TenancyManagerTest, EvictionPressureFollowsWaitersAndWatermarks) {
  TenancyOptions opts = ThreeTenants();
  TenancyManager mgr(opts, 400, 300, 0.1, 0.2);
  EXPECT_FALSE(mgr.EvictionPressure());
  mgr.NoteHardWaiter(2, +1);
  EXPECT_TRUE(mgr.EvictionPressure());
  EXPECT_TRUE(mgr.HasHardWaiters());
  mgr.NoteHardWaiter(2, -1);
  EXPECT_FALSE(mgr.EvictionPressure());

  // Fill tenant 0 into its watermark band (hard=100, low_wm=10).
  for (int i = 0; i < 95; ++i) mgr.Charge(static_cast<uint64_t>(i), nullptr);
  EXPECT_TRUE(mgr.EvictionPressure());
}

}  // namespace
}  // namespace magesim
