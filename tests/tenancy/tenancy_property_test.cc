// Property test: three tenants with randomized (zipf) access patterns racing
// fault-in, eviction, and a mid-run memory-node crash/recover window, over
// several seeds. After every run:
//   * charge/uncharge is a bijection with residency (per-vpn owner check,
//     per-cgroup usage sums, zero double charges / missing uncharges),
//   * periodic + quiescent invariant checks (including CheckTenantCharges)
//     report nothing,
//   * no tenant ever exceeded its hard limit by more than one in-flight
//     allocation batch.
#include <gtest/gtest.h>

#include <string>

#include "src/core/farmem.h"
#include "src/mem/page_table.h"
#include "src/tenancy/memcg.h"
#include "src/tenancy/tenant_spec.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

constexpr char kThreeTenants[] =
    "alpha:2:0.3:latency=zipf-trace/2,wss=2048,accesses=4000,theta=0.9;"
    "beta:1:0.3:normal=zipf-trace/2,wss=2048,accesses=4000,theta=0.99;"
    "gamma:1:0.5:batch=zipf-trace/2,wss=4096,accesses=4000,theta=0.8";

void RunOnce(uint64_t seed, bool crash) {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.seed = seed;
  opt.check_interval = 200 * kMicrosecond;
  opt.check_final = true;
  if (crash) opt.fault_plan = "crash@1ms-2ms";
  std::string err;
  ASSERT_TRUE(ParseTenancyList(kThreeTenants, &opt.tenancy, &err)) << err;

  SeqScanWorkload placeholder(
      SeqScanWorkload::Options{.region_pages = 64, .threads = 1, .passes = 1});
  FarMemoryMachine m(opt, placeholder);
  RunResult r = m.Run();

  SCOPED_TRACE("seed=" + std::to_string(seed) + " crash=" + std::to_string(crash));
  ASSERT_NE(m.checker(), nullptr);
  EXPECT_GT(r.invariant_checks, 1u);  // periodic checks actually ran
  EXPECT_EQ(r.invariant_violations, 0u) << m.checker()->Report();
  EXPECT_FALSE(r.aborted) << r.abort_reason;

  // Direct end-of-run bijection audit, independent of the checker.
  TenancyManager* ten = m.tenancy();
  ASSERT_NE(ten, nullptr);
  EXPECT_EQ(ten->double_charges(), 0u);
  EXPECT_EQ(ten->missing_uncharges(), 0u);

  PageTable& pt = m.kernel().page_table();
  std::vector<uint64_t> resident(3, 0);
  uint64_t total = 0;
  for (uint64_t vpn = 0; vpn < pt.num_pages(); ++vpn) {
    bool present = pt.At(vpn).present;
    int charged = ten->charged_tenant(vpn);
    EXPECT_EQ(present, charged >= 0) << "vpn " << vpn;
    if (present) {
      EXPECT_EQ(charged, ten->TenantOf(vpn)) << "vpn " << vpn;
      ++resident[static_cast<size_t>(charged)];
      ++total;
    }
  }
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(ten->cgroup(t).usage(), resident[static_cast<size_t>(t)]) << "tenant " << t;
    // Charges and uncharges reconcile with what stayed resident.
    EXPECT_EQ(ten->cgroup(t).charges() - ten->cgroup(t).uncharges(),
              resident[static_cast<size_t>(t)])
        << "tenant " << t;
  }
  EXPECT_EQ(ten->root().usage(), total);

  // Hard-limit overage is bounded by one in-flight allocation batch (at most
  // one outstanding fault per core plus a prefetch batch).
  ASSERT_EQ(r.tenants.size(), 3u);
  for (const TenantRunResult& t : r.tenants) {
    if (t.hard_limit_pages == 0) continue;
    EXPECT_LE(t.max_overage_pages, 64u) << "tenant " << t.name;
    EXPECT_GT(t.ops, 0u) << "tenant " << t.name;
  }
}

TEST(TenancyPropertyTest, RandomInterleavingsKeepChargesInSync) {
  for (uint64_t seed : {1u, 17u, 4242u}) RunOnce(seed, /*crash=*/false);
}

TEST(TenancyPropertyTest, CrashRecoverWindowsKeepChargesInSync) {
  for (uint64_t seed : {3u, 99u}) RunOnce(seed, /*crash=*/true);
}

}  // namespace
}  // namespace magesim
