// End-to-end wiring tests: the MAGESIM_TENANCY environment override, the
// detached (single-tenant) default, tenancy trace events, and the per-tenant
// sections of the metrics registry and JSON run-report.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/core/farmem.h"
#include "src/metrics/metrics.h"
#include "src/metrics/run_report.h"
#include "src/trace/trace.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

SeqScanWorkload SmallScan() {
  return SeqScanWorkload(
      SeqScanWorkload::Options{.region_pages = 1024, .threads = 2, .passes = 1});
}

TEST(TenancyIntegrationTest, DetachedByDefault) {
  SeqScanWorkload wl = SmallScan();
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.6;
  FarMemoryMachine m(opt, wl);
  EXPECT_EQ(m.tenancy(), nullptr);
  RunResult r = m.Run();
  EXPECT_TRUE(r.tenants.empty());
  EXPECT_EQ(&m.workload(), &wl);  // workload not replaced
}

TEST(TenancyIntegrationTest, EnvVarAttachesTenancy) {
  ASSERT_EQ(setenv("MAGESIM_TENANCY",
                   "a:1:0.4:latency=seqscan/2,pages=1024,passes=1;"
                   "b:1:0.6:batch=seqscan/2,pages=1024,passes=1",
                   1),
            0);
  SeqScanWorkload wl = SmallScan();
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  FarMemoryMachine m(opt, wl);
  unsetenv("MAGESIM_TENANCY");

  ASSERT_NE(m.tenancy(), nullptr);
  EXPECT_EQ(m.tenancy()->num_tenants(), 2);
  EXPECT_EQ(m.workload().name(), "multi-tenant");
  EXPECT_NE(&m.workload(), &wl);

  RunResult r = m.Run();
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_EQ(r.tenants[0].name, "a");
  EXPECT_EQ(r.tenants[0].qos, QosClass::kLatency);
  EXPECT_EQ(r.tenants[1].name, "b");
  EXPECT_GT(r.tenants[0].ops, 0u);
  EXPECT_GT(r.tenants[1].ops, 0u);
}

TEST(TenancyIntegrationTest, BadEnvSpecThrows) {
  ASSERT_EQ(setenv("MAGESIM_TENANCY", "not-a-spec", 1), 0);
  SeqScanWorkload wl = SmallScan();
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  EXPECT_THROW(FarMemoryMachine(opt, wl), std::invalid_argument);
  unsetenv("MAGESIM_TENANCY");
}

TEST(TenancyIntegrationTest, EmitsTenancyTraceEvents) {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  std::string err;
  ASSERT_TRUE(ParseTenancyList(
      "a:1:0.4:normal=seqscan/2,pages=2048,passes=2;"
      "b:1:0.6:batch=seqscan/2,pages=2048,passes=2",
      &opt.tenancy, &err))
      << err;

  Tracer tracer;
  TraceHashSink hash;
  tracer.AddSink(&hash);
  tracer.Install();
  SeqScanWorkload wl = SmallScan();
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  tracer.Uninstall();

  EXPECT_GT(r.faults, 0u);
  EXPECT_GT(hash.count(TraceEventType::kTenantCharge), 0u);
  EXPECT_GT(hash.count(TraceEventType::kTenantUncharge), 0u);
  EXPECT_GT(hash.count(TraceEventType::kTenantEvictSelect), 0u);
}

TEST(TenancyIntegrationTest, RunReportCarriesPerTenantSection) {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.metrics.enabled = true;
  std::string err;
  ASSERT_TRUE(ParseTenancyList(
      "lat:2:0.4:latency=seqscan/2,pages=1024,passes=1;"
      "bg:1:0.6:batch=seqscan/2,pages=1024,passes=1",
      &opt.tenancy, &err))
      << err;

  SeqScanWorkload wl = SmallScan();
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  ASSERT_EQ(r.tenants.size(), 2u);

  const std::string& json = m.run_report_json();
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"tenancy\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"bg\""), std::string::npos);
  EXPECT_NE(json.find("\"qos\":\"latency\""), std::string::npos);

  ASSERT_NE(m.metrics(), nullptr);
  // Per-tenant counters land in the registry under tenancy.<name>.*.
  EXPECT_NE(PrometheusText(*m.metrics()).find("tenancy"), std::string::npos);
}

}  // namespace
}  // namespace magesim
