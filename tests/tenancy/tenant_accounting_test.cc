// Machine-level tests for per-tenant accounting and QoS-aware victim
// selection: determinism of the weighted round-robin scan (the (tenant id,
// page id) tie-break regression), weight-proportional eviction shares, and
// latency tenants being evicted from last.
#include <gtest/gtest.h>

#include <string>

#include "src/core/farmem.h"
#include "src/tenancy/tenant_spec.h"
#include "src/trace/trace.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

FarMemoryMachine::Options TenantOptions(const std::string& spec, double local_ratio) {
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = local_ratio;
  opt.seed = 1;
  opt.check_final = true;
  std::string err;
  EXPECT_TRUE(ParseTenancyList(spec, &opt.tenancy, &err)) << err;
  return opt;
}

// The constructor workload is replaced by the machine-built
// MultiTenantWorkload; it just satisfies the reference parameter.
SeqScanWorkload Placeholder() {
  return SeqScanWorkload(SeqScanWorkload::Options{.region_pages = 64, .threads = 1, .passes = 1});
}

struct Fingerprint {
  uint64_t hash;
  uint64_t events;
  RunResult r;
};

Fingerprint RunFingerprinted(const std::string& spec, uint64_t seed) {
  FarMemoryMachine::Options opt =
      TenantOptions(spec, /*local_ratio=*/0.5);
  opt.seed = seed;

  Tracer tracer;
  TraceHashSink hash;
  tracer.AddSink(&hash);
  tracer.Install();

  SeqScanWorkload placeholder = Placeholder();
  FarMemoryMachine m(opt, placeholder);
  Fingerprint fp;
  fp.r = m.Run();
  fp.hash = hash.hash();
  fp.events = hash.total_events();
  tracer.Uninstall();
  EXPECT_EQ(fp.r.invariant_violations, 0u) << m.checker()->Report();
  return fp;
}

constexpr char kTwoTenants[] =
    "lat:4:0.4:latency=seqscan/2,pages=2048,passes=2;"
    "bg:1:0.6:batch=seqscan/2,pages=4096,passes=2";

// The victim scan must be fully deterministic: weighted round-robin order,
// largest-remainder tie-breaks, and per-policy list scans all resolve by
// (tenant id, page id), never by container iteration order — so the same
// seed replays to the same event stream, hash-for-hash.
TEST(TenantAccountingTest, SameSeedRunsAreByteIdentical) {
  Fingerprint a = RunFingerprinted(kTwoTenants, 7);
  Fingerprint b = RunFingerprinted(kTwoTenants, 7);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.hash, b.hash);
  ASSERT_EQ(a.r.tenants.size(), 2u);
  EXPECT_GT(a.r.tenants[0].ops, 0u);
  EXPECT_GT(a.r.tenants[1].ops, 0u);
}

TEST(TenantAccountingTest, WeightedSelectionFavorsHighWeightTenants) {
  // Two identical batch tenants, weight 3 vs 1, both forced over their soft
  // limits by a tight local-memory budget. The weighted round-robin should
  // take roughly three pages from `heavy` per page from `light`.
  FarMemoryMachine::Options opt = TenantOptions(
      "heavy:3:0:batch=seqscan/2,pages=4096,passes=3;"
      "light:1:0:batch=seqscan/2,pages=4096,passes=3",
      /*local_ratio=*/0.4);
  SeqScanWorkload placeholder = Placeholder();
  FarMemoryMachine m(opt, placeholder);
  RunResult r = m.Run();
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_EQ(r.invariant_violations, 0u) << m.checker()->Report();

  uint64_t heavy = r.tenants[0].evict_selected;
  uint64_t light = r.tenants[1].evict_selected;
  ASSERT_GT(heavy, 0u);
  ASSERT_GT(light, 0u);
  double ratio = static_cast<double>(heavy) / static_cast<double>(light);
  // Steady state pulls per-tenant eviction toward each tenant's refault rate
  // (identical workloads here), so the 3:1 quota shows up as a clear but
  // damped skew, not the raw weight ratio.
  EXPECT_GT(ratio, 1.15) << "heavy=" << heavy << " light=" << light;
}

TEST(TenantAccountingTest, LatencyTenantsAreEvictedFromLast) {
  // Same footprint and weight; the only difference is QoS. The batch tenant
  // sits in a lower (preferred) eviction tier, so it should absorb the bulk
  // of the evictions while the latency tenant's pages are protected.
  FarMemoryMachine::Options opt = TenantOptions(
      "lat:1:0:latency=seqscan/2,pages=4096,passes=3;"
      "bg:1:0:batch=seqscan/2,pages=4096,passes=3",
      /*local_ratio=*/0.4);
  SeqScanWorkload placeholder = Placeholder();
  FarMemoryMachine m(opt, placeholder);
  RunResult r = m.Run();
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_EQ(r.invariant_violations, 0u) << m.checker()->Report();

  uint64_t lat = r.tenants[0].evict_selected;
  uint64_t bg = r.tenants[1].evict_selected;
  ASSERT_GT(bg, 0u);
  EXPECT_LT(lat, bg) << "lat=" << lat << " bg=" << bg;
}

TEST(TenantAccountingTest, HardLimitBlocksAdmissionAndIsReleased) {
  // A tenant with a hard limit far below its working set must hit the
  // admission path (hard_limit_waits > 0), stay within one in-flight batch
  // of the limit, and still finish its workload.
  FarMemoryMachine::Options opt = TenantOptions(
      "capped:1:0.25:normal=seqscan/2,pages=4096,passes=2;"
      "free:1:0:normal=seqscan/2,pages=2048,passes=2",
      /*local_ratio=*/0.7);
  SeqScanWorkload placeholder = Placeholder();
  FarMemoryMachine m(opt, placeholder);
  RunResult r = m.Run();
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_EQ(r.invariant_violations, 0u) << m.checker()->Report();

  const TenantRunResult& capped = r.tenants[0];
  EXPECT_GT(capped.ops, 0u);
  EXPECT_GT(capped.hard_limit_waits, 0u);
  EXPECT_GT(capped.hard_limit_pages, 0u);
  // Overage is bounded by the faults in flight when the limit was crossed:
  // at most one page per core.
  EXPECT_LE(capped.max_overage_pages, 64u)
      << "overage " << capped.max_overage_pages << " exceeds one in-flight batch";
}

}  // namespace
}  // namespace magesim
