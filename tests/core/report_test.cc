#include "src/core/report.h"

#include <gtest/gtest.h>

#include "src/core/ideal_model.h"
#include "src/hw/machine_params.h"

namespace magesim {
namespace {

TEST(TableTest, AlignsColumnsAndPadsShortRows) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name"});  // short row padded
  std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Separator row present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n3,4\n");
}

TEST(TableTest, CsvQuotesSpecialCells) {
  // RFC 4180: cells containing commas, quotes, or newlines are quoted, with
  // embedded quotes doubled; plain cells stay bare.
  Table t({"name", "note"});
  t.AddRow({"a,b", "plain"});
  t.AddRow({"say \"hi\"", "line1\nline2"});
  t.AddRow({"cr\rhere", "x"});
  EXPECT_EQ(t.ToCsv(),
            "name,note\n"
            "\"a,b\",plain\n"
            "\"say \"\"hi\"\"\",\"line1\nline2\"\n"
            "\"cr\rhere\",x\n");
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.0, 0), "3");
  EXPECT_EQ(Table::Pct(12.345, 1), "12.3%");
}

TEST(IdealModelTest, ClosedFormProperties) {
  // No faults => no degradation.
  EXPECT_DOUBLE_EQ(IdealThroughputFraction({0, 0, 0}, 10.0, UsToNs(3.9)), 1.0);
  // The slowest core bounds throughput.
  std::vector<uint64_t> skewed = {100, 1000000, 100};
  std::vector<uint64_t> flat = {1000000, 1000000, 1000000};
  EXPECT_DOUBLE_EQ(IdealThroughputFraction(skewed, 10.0, UsToNs(3.9)),
                   IdealThroughputFraction(flat, 10.0, UsToNs(3.9)));
  // Drop percent is the complement.
  double f = IdealThroughputFraction(flat, 10.0, UsToNs(3.9));
  EXPECT_NEAR(IdealThroughputDropPercent(flat, 10.0, UsToNs(3.9)), (1 - f) * 100, 1e-9);
  // Jobs/hour at zero faults equals 3600/T0.
  EXPECT_NEAR(IdealJobsPerHour({0}, 7.2, UsToNs(3.9)), 500.0, 1e-9);
}

TEST(MachineParamsTest, WireMathMatchesPaperConstants) {
  MachineParams p = BareMetalParams();
  // 4 KB at 192 Gbps: ~170 ns; unloaded op = the paper's L = 3.9 us.
  EXPECT_NEAR(static_cast<double>(p.PageWireTime()), 170.0, 2.0);
  EXPECT_NEAR(static_cast<double>(p.UnloadedRdmaNs()), 3900.0, 10.0);
  EXPECT_EQ(p.cores(), 56);
  // 5.83 M pages/s ideal ceiling.
  EXPECT_NEAR(1e9 / static_cast<double>(p.PageWireTime()) / 1e6, 5.86, 0.05);
}

TEST(MachineParamsTest, BackendPresetsAreOrdered) {
  MachineParams rdma = VirtualizedParams();
  MachineParams ssd = NvmeBackendParams();
  MachineParams zswap = ZswapBackendParams();
  EXPECT_GT(ssd.UnloadedRdmaNs(), 4 * rdma.UnloadedRdmaNs());
  EXPECT_LT(zswap.UnloadedRdmaNs(), rdma.UnloadedRdmaNs());
  EXPECT_LT(ssd.nic_gbps, rdma.nic_gbps);
}

}  // namespace
}  // namespace magesim
