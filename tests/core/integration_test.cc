// End-to-end integration: full machine + kernel + workload across variants.
#include <gtest/gtest.h>

#include "src/core/farmem.h"
#include "src/core/ideal_model.h"
#include "src/workloads/gups.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

RunResult RunSeqScan(const KernelConfig& cfg, double local_ratio, int threads = 8,
                     uint64_t pages = 8192, int passes = 2) {
  SeqScanWorkload wl({.region_pages = pages, .threads = threads, .passes = passes});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = local_ratio;
  FarMemoryMachine m(opt, wl);
  return m.Run();
}

TEST(IntegrationTest, AllLocalHasNoFaultsAndFullThroughput) {
  RunResult r = RunSeqScan(MageLibConfig(), 1.0);
  EXPECT_EQ(r.faults, 0u);
  EXPECT_EQ(r.total_ops, 2u * 8192u);
  // 8 threads x 5.57us/page over 2 passes of 8192 pages.
  EXPECT_NEAR(r.sim_seconds, 8192.0 * 2 / 8 * 5570e-9, 0.002);
}

TEST(IntegrationTest, OffloadingCausesFaultsAndEvictions) {
  RunResult r = RunSeqScan(MageLibConfig(), 0.5);
  EXPECT_GT(r.faults, 4000u);       // streaming over 2x the resident set
  EXPECT_GT(r.evicted_pages, 2000u);
  EXPECT_EQ(r.sync_evictions, 0u);  // MAGE never sync-evicts
  EXPECT_GT(r.nic_read_gbps, 0.1);
}

TEST(IntegrationTest, EverySystemVariantCompletes) {
  for (const auto& cfg : AllSystemConfigs()) {
    RunResult r = RunSeqScan(cfg, 0.6, /*threads=*/8, /*pages=*/4096, /*passes=*/2);
    EXPECT_EQ(r.total_ops, 2u * 4096u) << cfg.name;
    EXPECT_GT(r.faults, 500u) << cfg.name;
    EXPECT_GT(r.sim_seconds, 0.0) << cfg.name;
  }
}

TEST(IntegrationTest, IdealVariantTracksAnalyticModel) {
  // Simulated ideal system ~= closed-form model: T = T0 + L * max_faults.
  RunResult local = RunSeqScan(IdealConfig(), 1.0);
  RunResult off = RunSeqScan(IdealConfig(), 0.5);
  double predicted_fraction =
      IdealThroughputFraction(off.faults_per_core, local.sim_seconds, UsToNs(3.9));
  double measured_fraction = local.sim_seconds / off.sim_seconds;
  EXPECT_NEAR(measured_fraction, predicted_fraction, 0.08);
}

TEST(IntegrationTest, MageBeatsHermitUnderPressure) {
  RunResult mage = RunSeqScan(MageLibConfig(), 0.5, 16, 16384, 2);
  RunResult hermit = RunSeqScan(HermitConfig(), 0.5, 16, 16384, 2);
  EXPECT_LT(mage.sim_seconds, hermit.sim_seconds);
  EXPECT_EQ(mage.sync_evictions, 0u);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  RunResult a = RunSeqScan(MageLibConfig(), 0.5);
  RunResult b = RunSeqScan(MageLibConfig(), 0.5);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.evicted_pages, b.evicted_pages);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
}

TEST(IntegrationTest, SeqScanChecksumIndependentOfPaging) {
  // The computed result (real work) must not depend on memory placement.
  SeqScanWorkload wl_local({.region_pages = 2048, .threads = 4, .passes = 1});
  SeqScanWorkload wl_far({.region_pages = 2048, .threads = 4, .passes = 1});
  FarMemoryMachine::Options o1, o2;
  o1.kernel = MageLibConfig();
  o1.local_mem_ratio = 1.0;
  o2.kernel = HermitConfig();
  o2.local_mem_ratio = 0.3;
  {
    FarMemoryMachine m(o1, wl_local);
    m.Run();
  }
  {
    FarMemoryMachine m(o2, wl_far);
    m.Run();
  }
  EXPECT_EQ(wl_local.checksum(), wl_far.checksum());
  EXPECT_NE(wl_local.checksum(), 0u);
}

TEST(IntegrationTest, TimeLimitStopsLongWorkload) {
  GupsWorkload wl({.total_pages = 4096,
                   .threads = 4,
                   .phase_change_at = 10 * kMillisecond,
                   .run_for = 10 * kSecond});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.9;
  opt.time_limit = 50 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_LT(r.sim_seconds, 0.2);
  EXPECT_GT(r.total_ops, 0u);
}

TEST(IntegrationTest, FaultsPerCoreRecorded) {
  RunResult r = RunSeqScan(MageLibConfig(), 0.5);
  uint64_t total = 0;
  int faulting_cores = 0;
  for (uint64_t f : r.faults_per_core) {
    total += f;
    if (f > 0) ++faulting_cores;
  }
  EXPECT_GE(total, r.faults);
  EXPECT_EQ(faulting_cores, 8);  // all app threads fault
}

}  // namespace
}  // namespace magesim
