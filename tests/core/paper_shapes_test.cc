// Paper-shape regression suite: locks in the qualitative results the
// reproduction must preserve (who wins, rough factors, where saturation and
// collapse happen). If a refactor or recalibration breaks one of these, the
// corresponding figure no longer tells the paper's story.
#include <gtest/gtest.h>

#include "src/core/farmem.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

// Steady-state fault throughput with active eviction (the Fig. 5 setup).
double FaultEvictMops(const KernelConfig& cfg, int threads) {
  SeqScanWorkload wl({.region_pages = 1200ull * static_cast<uint64_t>(threads),
                      .threads = threads,
                      .passes = 1000,
                      .compute_per_page_ns = 100});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.5;
  opt.time_limit = 40 * kMillisecond;
  opt.stats_warmup = 15 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  return m.Run().fault_mops;
}

RunResult Fig14Run(const KernelConfig& cfg) {
  SeqScanWorkload wl({.region_pages = 1500ull * 48,
                      .threads = 48,
                      .passes = 1000,
                      .compute_per_page_ns = 100});
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = 0.3;
  opt.time_limit = 40 * kMillisecond;
  opt.stats_warmup = 15 * kMillisecond;
  FarMemoryMachine m(opt, wl);
  return m.Run();
}

TEST(PaperShapes, Fig5SystemOrderingAt48Threads) {
  double hermit = FaultEvictMops(HermitConfig(), 48);
  double dilos = FaultEvictMops(DilosConfig(), 48);
  double magelnx = FaultEvictMops(MageLnxConfig(), 48);
  double magelib = FaultEvictMops(MageLibConfig(), 48);
  // Paper Fig. 5 / §6.4: magelib ~ NIC limit > magelnx > dilos > hermit.
  EXPECT_GT(magelib, 5.2);         // >= ~90% of the 5.83 M ops/s ideal
  EXPECT_GT(magelib, magelnx);
  EXPECT_GT(magelnx, dilos * 1.5);
  EXPECT_GT(dilos, hermit * 1.2);
  EXPECT_LT(hermit, 2.0);          // Hermit collapses far below ideal
}

TEST(PaperShapes, Fig5BaselinesSaturateNearSocketBoundary) {
  // Hermit/DiLOS stop scaling by ~24-32 threads; MAGE keeps scaling.
  double dilos24 = FaultEvictMops(DilosConfig(), 24);
  double dilos48 = FaultEvictMops(DilosConfig(), 48);
  EXPECT_LT(dilos48, dilos24 * 1.25);  // flat past saturation
  double mage24 = FaultEvictMops(MageLibConfig(), 24);
  double mage48 = FaultEvictMops(MageLibConfig(), 48);
  EXPECT_GT(mage48, mage24 * 1.25);  // still scaling toward the NIC limit
}

TEST(PaperShapes, Fig14TailLatencyOrderingAndSyncEvictions) {
  RunResult magelib = Fig14Run(MageLibConfig());
  RunResult dilos = Fig14Run(DilosConfig());
  RunResult hermit = Fig14Run(HermitConfig());
  // Paper: p99 of 12 / 82 / 255 us for magelib / dilos / hermit.
  EXPECT_LT(magelib.fault_latency.Percentile(99), dilos.fault_latency.Percentile(99));
  EXPECT_LT(dilos.fault_latency.Percentile(99), hermit.fault_latency.Percentile(99));
  // MAGE eliminates synchronous eviction entirely; Hermit relies on it.
  EXPECT_EQ(magelib.sync_evictions, 0u);
  EXPECT_GT(hermit.sync_evictions, 0u);
  // MAGE-Lib approaches wire speed (paper: 94% of 192 Gbps).
  EXPECT_GT(magelib.nic_read_gbps, 0.85 * 192.0);
}

TEST(PaperShapes, Fig7ShootdownLatencyGrowsWithThreads) {
  auto mean_shootdown_us = [](int threads) {
    SeqScanWorkload wl({.region_pages = 1000ull * static_cast<uint64_t>(threads),
                        .threads = threads,
                        .passes = 1000,
                        .compute_per_page_ns = 100});
    FarMemoryMachine::Options opt;
    opt.kernel = HermitConfig();
    opt.local_mem_ratio = 0.5;
    opt.time_limit = 25 * kMillisecond;
    opt.stats_warmup = 10 * kMillisecond;
    FarMemoryMachine m(opt, wl);
    RunResult r = m.Run();
    return r.tlb_shootdown_latency.mean() / 1000.0;
  };
  double at8 = mean_shootdown_us(8);
  double at48 = mean_shootdown_us(48);
  EXPECT_GT(at48, 2.0 * at8);  // paper: grows multi-x with thread count
}

TEST(PaperShapes, MageNeverSyncEvictsAnywhere) {
  for (double ratio : {0.7, 0.4, 0.15}) {
    for (const auto& cfg : {MageLibConfig(), MageLnxConfig()}) {
      SeqScanWorkload wl({.region_pages = 16384, .threads = 16, .passes = 2,
                          .compute_per_page_ns = 300});
      FarMemoryMachine::Options opt;
      opt.kernel = cfg;
      opt.local_mem_ratio = ratio;
      FarMemoryMachine m(opt, wl);
      RunResult r = m.Run();
      EXPECT_EQ(r.sync_evictions, 0u) << cfg.name << " @ " << ratio;
    }
  }
}

}  // namespace
}  // namespace magesim
