// Tests for the by-name workload factory and the multi-tenant composite
// workload built on top of it.
#include <gtest/gtest.h>

#include <string>

#include "src/tenancy/tenant_spec.h"
#include "src/workloads/multi_tenant.h"
#include "src/workloads/registry.h"

namespace magesim {
namespace {

TEST(WorkloadRegistryTest, ListIsSortedAndCoversTheCliNames) {
  const std::vector<WorkloadInfo>& infos = ListWorkloads();
  ASSERT_FALSE(infos.empty());
  for (size_t i = 1; i < infos.size(); ++i) {
    EXPECT_LT(infos[i - 1].name, infos[i].name);
  }
  auto has = [&](const std::string& name) {
    for (const WorkloadInfo& w : infos) {
      if (w.name == name) return true;
    }
    return false;
  };
  for (const char* name : {"pagerank", "xsbench", "seqscan", "gups", "metis", "memcached",
                           "zipf-trace", "mixed-trace", "trace", "dataframe"}) {
    EXPECT_TRUE(has(name)) << name;
  }
}

TEST(WorkloadRegistryTest, BuildsWithDefaultsAndThreadCount) {
  WorkloadParams params;
  params.threads = 3;
  std::string err;
  std::unique_ptr<Workload> wl = MakeWorkload("seqscan", params, &err);
  ASSERT_NE(wl, nullptr) << err;
  EXPECT_EQ(wl->name(), "seqscan");
  EXPECT_EQ(wl->num_threads(), 3);
  EXPECT_EQ(wl->wss_pages(), 32u * 1024u);  // historical CLI default
}

TEST(WorkloadRegistryTest, AppliesOptionOverrides) {
  WorkloadParams params;
  params.threads = 2;
  params.opts = {{"pages", "4096"}, {"passes", "8"}};
  std::string err;
  std::unique_ptr<Workload> wl = MakeWorkload("seqscan", params, &err);
  ASSERT_NE(wl, nullptr) << err;
  EXPECT_EQ(wl->wss_pages(), 4096u);
}

TEST(WorkloadRegistryTest, RejectsUnknownNamesKeysAndValues) {
  WorkloadParams params;
  std::string err;
  EXPECT_EQ(MakeWorkload("frobnicate", params, &err), nullptr);
  EXPECT_NE(err.find("unknown workload"), std::string::npos) << err;

  params.opts = {{"pagez", "4096"}};  // typo'd key must not run silently
  EXPECT_EQ(MakeWorkload("seqscan", params, &err), nullptr);
  EXPECT_NE(err.find("pagez"), std::string::npos) << err;

  params.opts = {{"pages", "many"}};
  EXPECT_EQ(MakeWorkload("seqscan", params, &err), nullptr);
  EXPECT_NE(err.find("many"), std::string::npos) << err;
}

TEST(WorkloadRegistryTest, TraceRequiresAFile) {
  WorkloadParams params;
  std::string err;
  EXPECT_EQ(MakeWorkload("trace", params, &err), nullptr);
  EXPECT_FALSE(err.empty());
}

std::vector<TenantSpec> TwoSpecs() {
  TenancyOptions opts;
  std::string err;
  EXPECT_TRUE(ParseTenancyList(
      "lat:4:0.4:latency=seqscan/2,pages=1024,passes=1;"
      "bg:1:0.8:batch=seqscan/3,pages=2048,passes=1",
      &opts, &err))
      << err;
  return opts.tenants;
}

TEST(MultiTenantWorkloadTest, ResolvesDisjointPlacement) {
  std::vector<TenantSpec> specs = TwoSpecs();
  std::string err;
  std::unique_ptr<MultiTenantWorkload> wl = MultiTenantWorkload::Build(&specs, &err);
  ASSERT_NE(wl, nullptr) << err;

  EXPECT_EQ(wl->num_tenants(), 2);
  EXPECT_EQ(wl->wss_pages(), 1024u + 2048u);
  EXPECT_EQ(wl->num_threads(), 5);

  // Tenant 0 owns the first vpn window and the first thread block; tenant 1
  // follows contiguously (prefix sums).
  EXPECT_EQ(specs[0].vpn_base, 0u);
  EXPECT_EQ(specs[0].vpn_pages, 1024u);
  EXPECT_EQ(specs[0].thread_begin, 0);
  EXPECT_EQ(specs[0].thread_end, 2);
  EXPECT_EQ(specs[1].vpn_base, 1024u);
  EXPECT_EQ(specs[1].vpn_pages, 2048u);
  EXPECT_EQ(specs[1].thread_begin, 2);
  EXPECT_EQ(specs[1].thread_end, 5);
  EXPECT_TRUE(specs[0].resolved());
  EXPECT_TRUE(specs[1].resolved());
}

TEST(MultiTenantWorkloadTest, PropagatesRegistryErrors) {
  std::vector<TenantSpec> specs = TwoSpecs();
  specs[1].workload = "frobnicate";
  std::string err;
  EXPECT_EQ(MultiTenantWorkload::Build(&specs, &err), nullptr);
  EXPECT_NE(err.find("bg"), std::string::npos) << err;
  EXPECT_NE(err.find("unknown workload"), std::string::npos) << err;
}

TEST(MultiTenantWorkloadTest, RejectsEmptyTenantList) {
  std::vector<TenantSpec> none;
  std::string err;
  EXPECT_EQ(MultiTenantWorkload::Build(&none, &err), nullptr);
}

}  // namespace
}  // namespace magesim
