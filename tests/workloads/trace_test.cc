#include "src/workloads/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/farmem.h"

namespace magesim {
namespace {

TEST(TraceGenTest, ScanTraceShape) {
  Trace t = GenerateScanTrace({.wss_pages = 1024, .threads = 4, .accesses_per_thread = 600});
  EXPECT_EQ(t.num_threads(), 4);
  EXPECT_EQ(t.total_accesses(), 2400u);
  // Thread 0 scans its shard sequentially with wraparound.
  const auto& s = t.streams[0];
  EXPECT_EQ(s[0].vpn, 0u);
  EXPECT_EQ(s[1].vpn, 1u);
  EXPECT_EQ(s[256].vpn, 0u);  // shard = 256 pages
  // All accesses in range.
  for (const auto& st : t.streams) {
    for (const auto& r : st) EXPECT_LT(r.vpn, 1024u);
  }
}

TEST(TraceGenTest, ZipfTraceIsSkewedAndDeterministic) {
  TraceGenOptions opt{.wss_pages = 4096, .threads = 2, .accesses_per_thread = 5000, .seed = 3};
  Trace a = GenerateZipfTrace(opt, 0.99);
  Trace b = GenerateZipfTrace(opt, 0.99);
  ASSERT_EQ(a.streams[0].size(), b.streams[0].size());
  for (size_t i = 0; i < a.streams[0].size(); ++i) {
    EXPECT_EQ(a.streams[0][i].vpn, b.streams[0][i].vpn);
  }
  // Skew: the most frequent page dominates a uniform share.
  std::map<uint64_t, int> counts;
  for (const auto& r : a.streams[0]) ++counts[r.vpn];
  int max_count = 0;
  for (auto& [vpn, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 50);  // uniform share would be ~1.2
}

TEST(TraceGenTest, MixedTraceContainsScanBursts) {
  Trace t = GenerateMixedTrace({.wss_pages = 4096, .threads = 2, .accesses_per_thread = 4000},
                               0.9, 0.2);
  // Detect at least one run of 16 consecutive vpns (a scan burst).
  bool found_burst = false;
  const auto& s = t.streams[0];
  int run = 0;
  for (size_t i = 1; i < s.size(); ++i) {
    run = (s[i].vpn == s[i - 1].vpn + 1) ? run + 1 : 0;
    if (run >= 16) {
      found_burst = true;
      break;
    }
  }
  EXPECT_TRUE(found_burst);
}

TEST(TraceIoTest, SaveLoadRoundTrip) {
  Trace t = GenerateMixedTrace({.wss_pages = 2048, .threads = 3, .accesses_per_thread = 1000},
                               0.8, 0.1);
  std::string path = ::testing::TempDir() + "/trace_roundtrip.bin";
  ASSERT_TRUE(t.SaveTo(path));
  Trace loaded;
  ASSERT_TRUE(Trace::LoadFrom(path, &loaded));
  EXPECT_EQ(loaded.wss_pages, t.wss_pages);
  ASSERT_EQ(loaded.num_threads(), t.num_threads());
  for (int s = 0; s < t.num_threads(); ++s) {
    const auto& a = t.streams[static_cast<size_t>(s)];
    const auto& b = loaded.streams[static_cast<size_t>(s)];
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].vpn, b[i].vpn);
      EXPECT_EQ(a[i].compute_ns, b[i].compute_ns);
      EXPECT_EQ(a[i].write, b[i].write);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsCorruptFiles) {
  std::string path = ::testing::TempDir() + "/garbage.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a trace file at all", f);
  std::fclose(f);
  Trace t;
  EXPECT_FALSE(Trace::LoadFrom(path, &t));
  EXPECT_FALSE(Trace::LoadFrom("/nonexistent/path/trace.bin", &t));
  std::remove(path.c_str());
}

TEST(TraceReplayTest, ReplayDrivesKernelAndCountsOps) {
  Trace t = GenerateZipfTrace(
      {.wss_pages = 8192, .threads = 8, .accesses_per_thread = 2000}, 0.8);
  TraceReplayWorkload wl(std::move(t));
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  FarMemoryMachine m(opt, wl);
  RunResult r = m.Run();
  EXPECT_EQ(r.total_ops, 8u * 2000u);
  EXPECT_GT(r.faults, 500u);  // zipf tail misses under 50% offload
}

TEST(TraceReplayTest, SameTraceSameResultAcrossSystems) {
  auto run = [](const KernelConfig& cfg) {
    Trace t = GenerateMixedTrace(
        {.wss_pages = 4096, .threads = 4, .accesses_per_thread = 1500}, 0.9, 0.15);
    TraceReplayWorkload wl(std::move(t));
    FarMemoryMachine::Options opt;
    opt.kernel = cfg;
    opt.local_mem_ratio = 0.6;
    FarMemoryMachine m(opt, wl);
    return m.Run().total_ops;
  };
  EXPECT_EQ(run(MageLibConfig()), run(HermitConfig()));
}

}  // namespace
}  // namespace magesim
