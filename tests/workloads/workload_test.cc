// Tests for the workload implementations: real-algorithm correctness
// (results independent of memory placement) and access-pattern properties.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/farmem.h"
#include "src/workloads/gups.h"
#include "src/workloads/kronecker.h"
#include "src/workloads/memcached.h"
#include "src/workloads/metis.h"
#include "src/workloads/pagerank.h"
#include "src/workloads/xsbench.h"

namespace magesim {
namespace {

TEST(KroneckerTest, GeneratesRequestedShape) {
  CsrGraph g = GenerateKronecker(10, 8, 42);
  EXPECT_EQ(g.num_vertices, 1024u);
  EXPECT_EQ(g.num_edges, 8192u);
  EXPECT_EQ(g.offsets.size(), 1025u);
  EXPECT_EQ(g.offsets[0], 0u);
  EXPECT_EQ(g.offsets[1024], g.num_edges);
  // CSR is consistent: offsets monotone, neighbors in range.
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    EXPECT_LE(g.offsets[v], g.offsets[v + 1]);
  }
  for (uint32_t n : g.neighbors) {
    EXPECT_LT(n, g.num_vertices);
  }
}

TEST(KroneckerTest, DeterministicPerSeedSkewedDegrees) {
  CsrGraph a = GenerateKronecker(10, 8, 1);
  CsrGraph b = GenerateKronecker(10, 8, 1);
  EXPECT_EQ(a.neighbors, b.neighbors);
  CsrGraph c = GenerateKronecker(10, 8, 2);
  EXPECT_NE(a.neighbors, c.neighbors);
  // Power-law-ish: the max degree far exceeds the mean (8).
  uint64_t max_deg = 0;
  for (uint64_t v = 0; v < a.num_vertices; ++v) {
    max_deg = std::max(max_deg, a.OutDegree(v));
  }
  EXPECT_GT(max_deg, 40u);
}

RunResult RunWorkload(Workload& wl, const KernelConfig& cfg, double ratio,
                      SimTime limit = 0) {
  FarMemoryMachine::Options opt;
  opt.kernel = cfg;
  opt.local_mem_ratio = ratio;
  opt.time_limit = limit;
  FarMemoryMachine m(opt, wl);
  return m.Run();
}

TEST(PageRankTest, RankMassConservedAndPlacementIndependent) {
  PageRankWorkload::Options o{.scale = 12, .iterations = 5, .threads = 8};
  PageRankWorkload local(o), far(o);
  RunWorkload(local, MageLibConfig(), 1.0);
  RunWorkload(far, HermitConfig(), 0.4);
  double sum_local = std::accumulate(local.ranks().begin(), local.ranks().end(), 0.0);
  // Kronecker graphs have many dangling vertices, which leak rank mass (the
  // GapBS kernel does not redistribute it); mass stays in (0, 1].
  EXPECT_GT(sum_local, 0.15);
  EXPECT_LE(sum_local, 1.0001);
  // The algorithm's output must not depend on the paging system underneath.
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(local.ranks()[i], far.ranks()[i]);
  }
}

TEST(PageRankTest, OffloadingCausesStreamFaults) {
  // Large enough that 50% local is above the machine's minimum pool size.
  PageRankWorkload::Options o{.scale = 16, .iterations = 2, .threads = 8};
  PageRankWorkload wl(o);
  RunResult r = RunWorkload(wl, MageLibConfig(), 0.5);
  EXPECT_GT(r.faults, wl.wss_pages() / 4);
  EXPECT_GT(r.total_ops, 0u);
}

TEST(XsBenchTest, DeterministicResultAcrossPlacements) {
  XsBenchWorkload::Options o{.gridpoints = 1 << 14, .lookups_per_thread = 500, .threads = 4};
  XsBenchWorkload a(o), b(o);
  RunWorkload(a, MageLibConfig(), 1.0);
  RunWorkload(b, DilosConfig(), 0.5);
  EXPECT_EQ(a.result_hash(), b.result_hash());
  EXPECT_NE(a.result_hash(), 0u);
}

TEST(XsBenchTest, BinarySearchTouchesGridAndXsRegions) {
  XsBenchWorkload::Options o{.gridpoints = 1 << 15, .lookups_per_thread = 300, .threads = 4};
  XsBenchWorkload wl(o);
  RunResult r = RunWorkload(wl, MageLibConfig(), 0.5);
  EXPECT_GT(r.faults, 100u);  // random gathers must fault under offloading
}

TEST(GupsTest, PhaseChangeMovesFaultPressure) {
  GupsWorkload wl({.total_pages = 8192,
                   .threads = 8,
                   .phase_change_at = 20 * kMillisecond,
                   .run_for = 40 * kMillisecond});
  RunResult r = RunWorkload(wl, MageLibConfig(), 0.85, 50 * kMillisecond);
  EXPECT_GT(r.total_ops, 1000u);
  // Updates continue after the phase change.
  const TimeSeries& ts = wl.timeline();
  ASSERT_GE(ts.buckets().size(), 1u);
  EXPECT_GT(ts.RatePerSec(0), 0.0);
}

TEST(MetisTest, PhasesCompleteAndResultStable) {
  MetisWorkload::Options o{.input_pages = 2048, .intermediate_pages = 1024, .threads = 8};
  MetisWorkload a(o), b(o);
  RunWorkload(a, MageLibConfig(), 1.0);
  RunWorkload(b, HermitConfig(), 0.5);
  EXPECT_GT(a.map_done_at(), 0);
  EXPECT_GT(a.reduce_done_at(), a.map_done_at());
  EXPECT_EQ(a.result(), b.result());
  EXPECT_NE(a.result(), 0u);
}

TEST(MemcachedTest, ServesLoadAndRecordsLatency) {
  MemcachedWorkload wl({.num_keys = 1 << 14,
                        .load_ops_per_sec = 50000,
                        .server_threads = 8,
                        .duration = 100 * kMillisecond});
  RunResult r = RunWorkload(wl, MageLibConfig(), 0.7, 150 * kMillisecond);
  EXPECT_GT(wl.completed_requests(), 3000u);
  EXPECT_GT(wl.request_latency().count(), 3000u);
  // Uncongested p50 is service compute + at most one remote read.
  EXPECT_LT(wl.request_latency().Percentile(50), 40 * kMicrosecond);
  (void)r;
}

TEST(MemcachedTest, OffloadingRaisesTailLatency) {
  auto p99 = [](double ratio) {
    MemcachedWorkload wl({.num_keys = 1 << 14,
                          .load_ops_per_sec = 50000,
                          .server_threads = 8,
                          .duration = 100 * kMillisecond});
    RunWorkload(wl, MageLibConfig(), ratio, 150 * kMillisecond);
    return wl.request_latency().Percentile(99);
  };
  EXPECT_GT(p99(0.3), p99(1.0));
}

TEST(MemcachedTest, OverloadDropsInsteadOfUnboundedQueueing) {
  MemcachedWorkload wl({.num_keys = 1 << 14,
                        .load_ops_per_sec = 10e6,  // far beyond capacity
                        .server_threads = 2,
                        .duration = 20 * kMillisecond,
                        .queue_capacity = 64});
  RunWorkload(wl, MageLibConfig(), 1.0, 40 * kMillisecond);
  EXPECT_GT(wl.dropped_requests(), 0u);
}

}  // namespace
}  // namespace magesim
