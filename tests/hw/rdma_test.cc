#include "src/hw/rdma.h"

#include <gtest/gtest.h>

#include "src/hw/memnode.h"
#include "src/sim/engine.h"

namespace magesim {
namespace {

TEST(RdmaTest, UnloadedReadLatencyMatchesPaperL) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  SimTime done = -1;
  auto body = [](Engine& e, RdmaNic& nic, SimTime& done) -> Task<> {
    co_await nic.Read(kPageSize);
    done = e.now();
  };
  e.Spawn(body(e, nic, done));
  e.Run();
  // Paper: L = 3.9 us best-case 4 KB access.
  EXPECT_NEAR(static_cast<double>(done), 3900.0, 50.0);
}

TEST(RdmaTest, ReadsSerializeOnTheWire) {
  Engine e;
  MachineParams p = BareMetalParams();
  RdmaNic nic(p);
  std::vector<SimTime> completions;
  auto body = [](Engine& e, RdmaNic& nic, std::vector<SimTime>& out) -> Task<> {
    std::vector<std::shared_ptr<RdmaCompletion>> cs;
    for (int i = 0; i < 10; ++i) cs.push_back(nic.PostRead(kPageSize));
    for (auto& c : cs) {
      co_await c->Wait();
      out.push_back(c->completes_at());
    }
  };
  e.Spawn(body(e, nic, completions));
  e.Run();
  ASSERT_EQ(completions.size(), 10u);
  SimTime wire = p.PageWireTime();
  for (size_t i = 1; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i] - completions[i - 1], wire);
  }
}

TEST(RdmaTest, ReadAndWriteChannelsAreIndependent) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  SimTime read_done = -1, write_done = -1;
  auto body = [](Engine& e, RdmaNic& nic, SimTime& r, SimTime& w) -> Task<> {
    auto rc = nic.PostRead(kPageSize);
    auto wc = nic.PostWrite(kPageSize);
    co_await rc->Wait();
    r = e.now();
    co_await wc->Wait();
    w = e.now();
  };
  e.Spawn(body(e, nic, read_done, write_done));
  e.Run();
  // Full duplex: the write does not queue behind the read.
  EXPECT_EQ(read_done, write_done);
}

TEST(RdmaTest, ThroughputCapsAtConfiguredBandwidth) {
  Engine e;
  MachineParams p = BareMetalParams();
  RdmaNic nic(p);
  constexpr int kOps = 20000;
  SimTime done = -1;
  auto body = [](Engine& e, RdmaNic& nic, SimTime& done) -> Task<> {
    std::shared_ptr<RdmaCompletion> last;
    for (int i = 0; i < kOps; ++i) last = nic.PostRead(kPageSize);
    co_await last->Wait();
    done = e.now();
  };
  e.Spawn(body(e, nic, done));
  e.Run();
  double achieved_mops = kOps / (NsToSec(done) * 1e6);
  // Ideal limit from the paper: 5.83 M pages/s at 192 Gbps.
  EXPECT_NEAR(achieved_mops, 5.83, 0.1);
  EXPECT_GT(nic.ReadUtilization(), 0.95);
}

TEST(RdmaTest, CongestionShowsUpInQueueingHistogram) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  auto body = [](RdmaNic& nic) -> Task<> {
    std::shared_ptr<RdmaCompletion> last;
    for (int i = 0; i < 1000; ++i) last = nic.PostRead(kPageSize);
    co_await last->Wait();
  };
  e.Spawn(body(nic));
  e.Run();
  // The 1000th op queued behind ~999 wire slots.
  EXPECT_GT(nic.read_queueing().max(), 900 * BareMetalParams().PageWireTime());
  EXPECT_EQ(nic.read_queueing().count(), 1000u);
}

TEST(RdmaTest, StatsTrackBytesAndOps) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  auto body = [](RdmaNic& nic) -> Task<> {
    co_await nic.Read(kPageSize);
    co_await nic.Write(kPageSize);
    co_await nic.Write(kPageSize);
  };
  e.Spawn(body(nic));
  e.Run();
  EXPECT_EQ(nic.reads_posted(), 1u);
  EXPECT_EQ(nic.writes_posted(), 2u);
  EXPECT_EQ(nic.bytes_read(), kPageSize);
  EXPECT_EQ(nic.bytes_written(), 2 * kPageSize);
}

TEST(RdmaTest, OverlappingBrownoutsMergeToWorstOfBoth) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  nic.InjectBrownout(1000, 5000, 0.5, 100);
  nic.InjectBrownout(3000, 8000, 0.25, 50);   // overlaps the first
  nic.InjectBrownout(20000, 30000, 0.1, 0);   // disjoint
  nic.InjectBrownout(9000, 9000, 0.9, 0);     // empty: rejected
  EXPECT_EQ(nic.num_brownout_windows(), 2u);

  // Inside the merged window [1000, 8000): min factor 0.25, max extra 100.
  MachineParams p = BareMetalParams();
  SimTime slow_done = -1, fast_done = -1;
  auto body = [](RdmaNic& nic, SimTime& slow, SimTime& fast) -> Task<> {
    co_await Delay{4000};
    SimTime t0 = Engine::current().now();
    co_await nic.Read(kPageSize);
    slow = Engine::current().now() - t0;
    co_await Delay{8000};  // past the merged window, before the disjoint one
    t0 = Engine::current().now();
    co_await nic.Read(kPageSize);
    fast = Engine::current().now() - t0;
  };
  e.Spawn(body(nic, slow_done, fast_done));
  e.Run();
  SimTime slow_wire =
      static_cast<SimTime>(kPageSize * 8.0 / (p.nic_gbps * 0.25));  // min factor wins
  EXPECT_EQ(fast_done, p.PageWireTime() + p.rdma_base_ns);
  EXPECT_EQ(slow_done, slow_wire + p.rdma_base_ns + 100);  // max extra latency wins
}

TEST(RdmaTest, BrownoutCursorHandlesManySequentialWindows) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  // Many disjoint windows; posts at increasing times must pick the right one.
  for (int i = 0; i < 64; ++i) {
    nic.InjectBrownout(i * 100000, i * 100000 + 50000, 0.5, i);
  }
  EXPECT_EQ(nic.num_brownout_windows(), 64u);
  std::vector<SimTime> lat;
  auto body = [](RdmaNic& nic, std::vector<SimTime>& lat) -> Task<> {
    for (int i = 0; i < 64; ++i) {
      // Land inside window i, then in the gap after it.
      Engine& eng = Engine::current();
      SimTime in_window = i * 100000 + 10000;
      co_await Delay{in_window - eng.now()};
      SimTime t0 = eng.now();
      co_await nic.Read(kPageSize);
      lat.push_back(eng.now() - t0);
    }
  };
  e.Spawn(body(nic, lat));
  e.Run();
  MachineParams p = BareMetalParams();
  SimTime halved_wire = static_cast<SimTime>(kPageSize * 8.0 / (p.nic_gbps * 0.5));
  ASSERT_EQ(lat.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(lat[static_cast<size_t>(i)], halved_wire + p.rdma_base_ns + i)
        << "window " << i;
  }
}

namespace {
// Scripted per-op fate for the fault-model hook tests.
struct ScriptedFaultModel : HwFaultModel {
  std::vector<RdmaOpFate> fates;
  size_t next = 0;
  RdmaOpFate OnRdmaPost(bool, SimTime, int) override {
    return next < fates.size() ? fates[next++] : RdmaOpFate{};
  }
  SimTime ExtraIpiDelayNs(SimTime) override { return 0; }
};
}  // namespace

TEST(RdmaTest, FaultModelDropLosesCompletionAndCounts) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  ScriptedFaultModel fm;
  fm.fates.push_back({.error = false, .drop = true});
  fm.fates.push_back({});
  nic.SetFaultModel(&fm);
  std::shared_ptr<RdmaCompletion> dropped, ok;
  auto body = [](RdmaNic& nic, std::shared_ptr<RdmaCompletion>& dropped,
                 std::shared_ptr<RdmaCompletion>& ok) -> Task<> {
    dropped = nic.PostRead(kPageSize);
    ok = nic.PostRead(kPageSize);
    co_await ok->Wait();
  };
  e.Spawn(body(nic, dropped, ok));
  e.Run();
  EXPECT_FALSE(dropped->done());  // the event never fires
  EXPECT_EQ(dropped->status(), RdmaCompletion::Status::kLost);
  EXPECT_TRUE(ok->done());
  EXPECT_TRUE(ok->ok());
  EXPECT_EQ(nic.reads_dropped(), 1u);
  EXPECT_EQ(nic.read_latency().count(), 1u);  // dropped op records no latency
}

TEST(RdmaTest, FaultModelErrorSignalsFailedCompletion) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  ScriptedFaultModel fm;
  fm.fates.push_back({.error = true, .drop = false});
  nic.SetFaultModel(&fm);
  std::shared_ptr<RdmaCompletion> c;
  auto body = [](RdmaNic& nic, std::shared_ptr<RdmaCompletion>& c) -> Task<> {
    c = nic.PostWrite(kPageSize);
    co_await c->Wait();
  };
  e.Spawn(body(nic, c));
  e.Run();
  EXPECT_TRUE(c->done());
  EXPECT_FALSE(c->ok());
  EXPECT_EQ(c->status(), RdmaCompletion::Status::kError);
  EXPECT_EQ(nic.writes_errored(), 1u);
}

TEST(MemNodeTest, SetupAndDirectReservation) {
  Engine e;
  MemoryNode node(1ULL << 30);
  auto body = [](MemoryNode& n) -> Task<> { co_await n.Setup(); };
  e.Spawn(body(node));
  e.Run();
  EXPECT_TRUE(node.registered());
  EXPECT_EQ(node.capacity_pages(), (1ULL << 30) / kPageSize);
  EXPECT_TRUE(node.ReserveDirect(1ULL << 29));
  EXPECT_EQ(node.direct_reserved(), 1ULL << 29);
  EXPECT_FALSE(node.ReserveDirect(1ULL << 31));
}

TEST(MemNodeTest, ReserveRequiresRegistration) {
  MemoryNode node(1ULL << 30);
  EXPECT_FALSE(node.ReserveDirect(kPageSize));
  EXPECT_EQ(node.direct_reserved(), 0u);
  node.RegisterSetup();
  EXPECT_TRUE(node.ReserveDirect(kPageSize));
  EXPECT_EQ(node.direct_reserved(), kPageSize);
}

TEST(MemNodeTest, ReservationsAccumulateAndRejectOverflow) {
  MemoryNode node(10 * kPageSize);
  node.RegisterSetup();
  EXPECT_TRUE(node.ReserveDirect(6 * kPageSize));
  EXPECT_TRUE(node.ReserveDirect(4 * kPageSize));
  EXPECT_EQ(node.direct_reserved(), 10 * kPageSize);
  // A second reservation must not silently overwrite the first: the region
  // is full, so any further request is rejected and state is unchanged.
  EXPECT_FALSE(node.ReserveDirect(1));
  EXPECT_EQ(node.direct_reserved(), 10 * kPageSize);
}

TEST(MemNodeTest, CrashEpisodesAreCounted) {
  MemoryNode node(1ULL << 20);
  EXPECT_TRUE(node.available());
  node.SetAvailable(false);
  node.SetAvailable(false);  // already down: not a new episode
  node.SetAvailable(true);
  node.SetAvailable(false);
  EXPECT_FALSE(node.available());
  EXPECT_EQ(node.crash_episodes(), 2u);
}

}  // namespace
}  // namespace magesim
