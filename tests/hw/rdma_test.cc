#include "src/hw/rdma.h"

#include <gtest/gtest.h>

#include "src/hw/memnode.h"
#include "src/sim/engine.h"

namespace magesim {
namespace {

TEST(RdmaTest, UnloadedReadLatencyMatchesPaperL) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  SimTime done = -1;
  auto body = [](Engine& e, RdmaNic& nic, SimTime& done) -> Task<> {
    co_await nic.Read(kPageSize);
    done = e.now();
  };
  e.Spawn(body(e, nic, done));
  e.Run();
  // Paper: L = 3.9 us best-case 4 KB access.
  EXPECT_NEAR(static_cast<double>(done), 3900.0, 50.0);
}

TEST(RdmaTest, ReadsSerializeOnTheWire) {
  Engine e;
  MachineParams p = BareMetalParams();
  RdmaNic nic(p);
  std::vector<SimTime> completions;
  auto body = [](Engine& e, RdmaNic& nic, std::vector<SimTime>& out) -> Task<> {
    std::vector<std::shared_ptr<RdmaCompletion>> cs;
    for (int i = 0; i < 10; ++i) cs.push_back(nic.PostRead(kPageSize));
    for (auto& c : cs) {
      co_await c->Wait();
      out.push_back(c->completes_at());
    }
  };
  e.Spawn(body(e, nic, completions));
  e.Run();
  ASSERT_EQ(completions.size(), 10u);
  SimTime wire = p.PageWireTime();
  for (size_t i = 1; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i] - completions[i - 1], wire);
  }
}

TEST(RdmaTest, ReadAndWriteChannelsAreIndependent) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  SimTime read_done = -1, write_done = -1;
  auto body = [](Engine& e, RdmaNic& nic, SimTime& r, SimTime& w) -> Task<> {
    auto rc = nic.PostRead(kPageSize);
    auto wc = nic.PostWrite(kPageSize);
    co_await rc->Wait();
    r = e.now();
    co_await wc->Wait();
    w = e.now();
  };
  e.Spawn(body(e, nic, read_done, write_done));
  e.Run();
  // Full duplex: the write does not queue behind the read.
  EXPECT_EQ(read_done, write_done);
}

TEST(RdmaTest, ThroughputCapsAtConfiguredBandwidth) {
  Engine e;
  MachineParams p = BareMetalParams();
  RdmaNic nic(p);
  constexpr int kOps = 20000;
  SimTime done = -1;
  auto body = [](Engine& e, RdmaNic& nic, SimTime& done) -> Task<> {
    std::shared_ptr<RdmaCompletion> last;
    for (int i = 0; i < kOps; ++i) last = nic.PostRead(kPageSize);
    co_await last->Wait();
    done = e.now();
  };
  e.Spawn(body(e, nic, done));
  e.Run();
  double achieved_mops = kOps / (NsToSec(done) * 1e6);
  // Ideal limit from the paper: 5.83 M pages/s at 192 Gbps.
  EXPECT_NEAR(achieved_mops, 5.83, 0.1);
  EXPECT_GT(nic.ReadUtilization(), 0.95);
}

TEST(RdmaTest, CongestionShowsUpInQueueingHistogram) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  auto body = [](RdmaNic& nic) -> Task<> {
    std::shared_ptr<RdmaCompletion> last;
    for (int i = 0; i < 1000; ++i) last = nic.PostRead(kPageSize);
    co_await last->Wait();
  };
  e.Spawn(body(nic));
  e.Run();
  // The 1000th op queued behind ~999 wire slots.
  EXPECT_GT(nic.read_queueing().max(), 900 * BareMetalParams().PageWireTime());
  EXPECT_EQ(nic.read_queueing().count(), 1000u);
}

TEST(RdmaTest, StatsTrackBytesAndOps) {
  Engine e;
  RdmaNic nic(BareMetalParams());
  auto body = [](RdmaNic& nic) -> Task<> {
    co_await nic.Read(kPageSize);
    co_await nic.Write(kPageSize);
    co_await nic.Write(kPageSize);
  };
  e.Spawn(body(nic));
  e.Run();
  EXPECT_EQ(nic.reads_posted(), 1u);
  EXPECT_EQ(nic.writes_posted(), 2u);
  EXPECT_EQ(nic.bytes_read(), kPageSize);
  EXPECT_EQ(nic.bytes_written(), 2 * kPageSize);
}

TEST(MemNodeTest, SetupAndDirectReservation) {
  Engine e;
  MemoryNode node(1ULL << 30);
  auto body = [](MemoryNode& n) -> Task<> { co_await n.Setup(); };
  e.Spawn(body(node));
  e.Run();
  EXPECT_TRUE(node.registered());
  EXPECT_EQ(node.capacity_pages(), (1ULL << 30) / kPageSize);
  EXPECT_TRUE(node.ReserveDirect(1ULL << 29));
  EXPECT_EQ(node.direct_reserved(), 1ULL << 29);
  EXPECT_FALSE(node.ReserveDirect(1ULL << 31));
}

}  // namespace
}  // namespace magesim
