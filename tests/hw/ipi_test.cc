#include "src/hw/ipi.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/sim/engine.h"

namespace magesim {
namespace {

std::vector<CoreId> Cores(int n) {
  std::vector<CoreId> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(TopologyTest, SocketAssignment) {
  Topology topo(BareMetalParams());
  EXPECT_EQ(topo.num_cores(), 56);
  EXPECT_EQ(topo.SocketOf(0), 0);
  EXPECT_EQ(topo.SocketOf(27), 0);
  EXPECT_EQ(topo.SocketOf(28), 1);
  EXPECT_TRUE(topo.SameSocket(3, 20));
  EXPECT_FALSE(topo.SameSocket(3, 40));
}

TEST(ShootdownTest, NoRemoteTargetsCompletesWithLocalFlushOnly) {
  Engine e;
  Topology topo(BareMetalParams());
  TlbShootdownManager mgr(topo);
  mgr.SetTargetCores({0});
  SimTime done = -1;
  auto body = [](Engine& e, TlbShootdownManager& mgr, SimTime& done) -> Task<> {
    co_await mgr.Shootdown(/*initiator=*/0, /*num_pages=*/1);
    done = e.now();
  };
  e.Spawn(body(e, mgr, done));
  e.Run();
  EXPECT_EQ(done, BareMetalParams().invlpg_ns);  // only the local INVLPG
  EXPECT_EQ(mgr.ipis_sent(), 0u);
}

TEST(ShootdownTest, SingleTargetLatencyComposition) {
  Engine e;
  MachineParams p = BareMetalParams();
  Topology topo(p);
  TlbShootdownManager mgr(topo);
  mgr.SetTargetCores({0, 1});  // initiator 0, one same-socket target
  SimTime done = -1;
  auto body = [](Engine& e, TlbShootdownManager& mgr, SimTime& done) -> Task<> {
    co_await mgr.Shootdown(0, 1);
    done = e.now();
  };
  e.Spawn(body(e, mgr, done));
  e.Run();
  SimTime expected = p.invlpg_ns                       // local flush
                     + p.ipi_send_ns                   // ICR write
                     + p.ipi_delivery_same_socket_ns   // wire
                     + p.ipi_handler_base_ns + p.invlpg_ns;  // handler
  EXPECT_EQ(done, expected);
  EXPECT_EQ(mgr.ipis_sent(), 1u);
  EXPECT_EQ(topo.core(1).interrupts_received(), 1u);
  EXPECT_GT(topo.core(1).stolen_total_ns(), 0);
}

TEST(ShootdownTest, CrossSocketIsSlower) {
  MachineParams p = BareMetalParams();
  auto run = [&](CoreId target) {
    Engine e;
    Topology topo(p);
    TlbShootdownManager mgr(topo);
    mgr.SetTargetCores({0, target});
    SimTime done = -1;
    auto body = [](Engine& e, TlbShootdownManager& mgr, SimTime& done) -> Task<> {
      co_await mgr.Shootdown(0, 1);
      done = e.now();
    };
    e.Spawn(body(e, mgr, done));
    e.Run();
    return done;
  };
  SimTime same = run(1);
  SimTime cross = run(40);
  EXPECT_EQ(cross - same, p.ipi_delivery_cross_socket_ns - p.ipi_delivery_same_socket_ns);
}

TEST(ShootdownTest, LargeBatchUsesFullFlush) {
  Engine e;
  MachineParams p = BareMetalParams();
  Topology topo(p);
  TlbShootdownManager mgr(topo);
  EXPECT_EQ(mgr.HandlerCost(1), p.ipi_handler_base_ns + p.invlpg_ns);
  EXPECT_EQ(mgr.HandlerCost(256), p.ipi_handler_base_ns + p.full_flush_ns);
  // Handler cost is capped: flushing 256 pages is cheaper than 256 INVLPGs.
  EXPECT_LT(mgr.HandlerCost(256), p.ipi_handler_base_ns + 256 * p.invlpg_ns);
}

TEST(ShootdownTest, VirtualizationAddsVmexits) {
  auto run = [](MachineParams p) {
    Engine e;
    Topology topo(p);
    TlbShootdownManager mgr(topo);
    mgr.SetTargetCores({0, 1});
    SimTime done = -1;
    auto body = [](Engine& e, TlbShootdownManager& mgr, SimTime& done) -> Task<> {
      co_await mgr.Shootdown(0, 1);
      done = e.now();
    };
    e.Spawn(body(e, mgr, done));
    e.Run();
    return done;
  };
  SimTime bare = run(BareMetalParams());
  SimTime virt = run(VirtualizedParams());
  EXPECT_EQ(virt - bare, 2 * BareMetalParams().vmexit_ns);  // send + receive exits
}

Task<> StormInitiator(TlbShootdownManager& mgr, CoreId self, int rounds, WaitGroup& wg) {
  for (int i = 0; i < rounds; ++i) {
    co_await mgr.Shootdown(self, 8);
  }
  wg.Done();
}

TEST(ShootdownTest, ConcurrentInitiatorsInflatePerIpiLatency) {
  // One initiator alone vs. 24 initiators concurrently: per-IPI latency must
  // grow (target-side queueing), reproducing the §3.3.1 IPI-storm effect.
  auto mean_ipi = [](int initiators) {
    Engine e;
    Topology topo(BareMetalParams());
    TlbShootdownManager mgr(topo);
    mgr.SetTargetCores(Cores(32));
    WaitGroup wg;
    for (int i = 0; i < initiators; ++i) {
      wg.Add();
      e.Spawn(StormInitiator(mgr, i, 4, wg));
    }
    e.Run();
    return mgr.ipi_delivery_latency().mean();
  };
  double solo = mean_ipi(1);
  double storm = mean_ipi(24);
  EXPECT_GT(storm, 2.0 * solo);
}

TEST(ShootdownTest, BeginFinishSplitAllowsOverlap) {
  Engine e;
  Topology topo(BareMetalParams());
  TlbShootdownManager mgr(topo);
  mgr.SetTargetCores(Cores(8));
  SimTime begin_done = -1, finish_done = -1;
  auto body = [](Engine& e, TlbShootdownManager& mgr, SimTime& b, SimTime& f) -> Task<> {
    auto op = co_await mgr.Begin(0, 16);
    b = e.now();
    co_await mgr.Finish(op);
    f = e.now();
  };
  e.Spawn(body(e, mgr, begin_done, finish_done));
  e.Run();
  EXPECT_GT(begin_done, 0);
  EXPECT_GT(finish_done, begin_done);  // delivery outlasts the send loop
  EXPECT_EQ(mgr.shootdowns(), 1u);
  EXPECT_EQ(mgr.shootdown_latency().count(), 1u);
}

}  // namespace
}  // namespace magesim
