#include <gtest/gtest.h>

#include <set>

#include "src/mem/swap_allocator.h"
#include "src/mem/vma.h"
#include "src/sim/engine.h"

namespace magesim {
namespace {

TEST(SwapAllocatorTest, AllocatesDistinctSlots) {
  Engine e;
  SwapAllocator swap(1024, 4);
  e.Spawn([](SwapAllocator& s) -> Task<> {
    std::set<uint64_t> slots;
    for (int i = 0; i < 100; ++i) {
      uint64_t slot = co_await s.Alloc(0);
      EXPECT_NE(slot, SwapAllocator::kNoSlot);
      EXPECT_TRUE(slots.insert(slot).second);
    }
    EXPECT_EQ(s.free_slots(), 1024u - 100u);
  }(swap));
  e.Run();
}

TEST(SwapAllocatorTest, FreeMakesSlotReusable) {
  Engine e;
  SwapAllocator swap(4, 1);
  e.Spawn([](SwapAllocator& s) -> Task<> {
    uint64_t a = co_await s.Alloc(0);
    uint64_t b = co_await s.Alloc(0);
    uint64_t c = co_await s.Alloc(0);
    uint64_t d = co_await s.Alloc(0);
    EXPECT_EQ(co_await s.Alloc(0), SwapAllocator::kNoSlot);
    co_await s.Free(b);
    uint64_t again = co_await s.Alloc(0);
    EXPECT_EQ(again, b);
    (void)a;
    (void)c;
    (void)d;
  }(swap));
  e.Run();
}

TEST(SwapAllocatorTest, PerCoreHintsStartStaggered) {
  Engine e;
  SwapAllocator swap(4096, 4);
  e.Spawn([](SwapAllocator& s) -> Task<> {
    uint64_t c0 = co_await s.Alloc(0);
    uint64_t c1 = co_await s.Alloc(1);
    uint64_t c2 = co_await s.Alloc(2);
    // Different cores allocate from different clusters.
    EXPECT_NE(c0 / SwapAllocator::kClusterSlots, c1 / SwapAllocator::kClusterSlots);
    EXPECT_NE(c1 / SwapAllocator::kClusterSlots, c2 / SwapAllocator::kClusterSlots);
  }(swap));
  e.Run();
}

Task<> SwapHammer(SwapAllocator& s, CoreId core, int iters, WaitGroup& wg) {
  for (int i = 0; i < iters; ++i) {
    uint64_t slot = co_await s.Alloc(core);
    co_await Delay{100};
    co_await s.Free(slot);
  }
  wg.Done();
}

TEST(SwapAllocatorTest, GlobalLockContendsAcrossCores) {
  Engine e;
  SwapAllocator swap(1 << 16, 32);
  WaitGroup wg;
  for (int c = 0; c < 32; ++c) {
    wg.Add();
    e.Spawn(SwapHammer(swap, c, 50, wg));
  }
  e.Run();
  EXPECT_GT(swap.lock_stats().contended, 100u);
  EXPECT_GT(swap.lock_stats().mean_wait_ns(), 500.0);
}

TEST(DirectMappingTest, IsLinearAndFree) {
  DirectMapping dm(1000);
  EXPECT_EQ(dm.RemoteOffsetFor(0), 1000u);
  EXPECT_EQ(dm.RemoteOffsetFor(128), 1128u);
}

TEST(VmaTest, LockedSetFindsCoveringVma) {
  Engine e;
  LockedVmaSet vmas;
  vmas.Add({0, 100, 1});
  vmas.Add({100, 300, 2});
  e.Spawn([](LockedVmaSet& v) -> Task<> {
    const Vma* a = co_await v.Find(50);
    EXPECT_NE(a, nullptr);
    EXPECT_EQ(a->id, 1);
    const Vma* b = co_await v.Find(100);
    EXPECT_NE(b, nullptr);
    EXPECT_EQ(b->id, 2);
    EXPECT_EQ(co_await v.Find(500), nullptr);
  }(vmas));
  e.Run();
  EXPECT_EQ(vmas.lock_stats()->acquisitions, 3u);
}

Task<> VmaHammer(VmaResolver& v, uint64_t vpn, int iters, WaitGroup& wg) {
  for (int i = 0; i < iters; ++i) {
    co_await v.Find(vpn);
    co_await Delay{20};
  }
  wg.Done();
}

TEST(VmaTest, ShardingRemovesContention) {
  auto contended_waits = [](bool sharded) -> uint64_t {
    Engine e;
    std::unique_ptr<VmaResolver> v;
    auto locked = std::make_unique<LockedVmaSet>();
    auto shards = std::make_unique<ShardedVmaSet>(1 << 20, 64);
    locked->Add({0, 1 << 20, 1});
    shards->Add({0, 1 << 20, 1});
    WaitGroup wg;
    VmaResolver& r = sharded ? static_cast<VmaResolver&>(*shards)
                             : static_cast<VmaResolver&>(*locked);
    for (int c = 0; c < 32; ++c) {
      wg.Add();
      // Each "core" faults in its own address region: disjoint shards.
      e.Spawn(VmaHammer(r, static_cast<uint64_t>(c) << 14, 50, wg));
    }
    e.Run();
    if (sharded) {
      return static_cast<ShardedVmaSet*>(&r)->AggregateLockStats().contended;
    }
    return static_cast<LockedVmaSet*>(&r)->lock_stats()->contended;
  };
  EXPECT_GT(contended_waits(false), 100u);
  EXPECT_EQ(contended_waits(true), 0u);
}

TEST(VmaTest, NoVmaIsInstant) {
  Engine e;
  NoVma v(1024);
  SimTime elapsed = -1;
  e.Spawn([](Engine& e, NoVma& v, SimTime& elapsed) -> Task<> {
    const Vma* a = co_await v.Find(5);
    EXPECT_NE(a, nullptr);
    EXPECT_EQ(co_await v.Find(4096), nullptr);
    elapsed = e.now();
  }(e, v, elapsed));
  e.Run();
  EXPECT_EQ(elapsed, 0);
}

}  // namespace
}  // namespace magesim
