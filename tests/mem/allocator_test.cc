#include <gtest/gtest.h>

#include "src/mem/multilayer_allocator.h"
#include "src/mem/percpu_cache.h"
#include "src/sim/engine.h"

namespace magesim {
namespace {

template <typename Body>
void RunSim(Body body) {
  Engine e;
  e.Spawn(body());
  e.Run();
}

TEST(PcpAllocatorTest, AllocFreeRoundTrip) {
  Engine e;
  FramePool pool(256);
  BuddyAllocator buddy(pool);
  PcpAllocator alloc(buddy, 4);
  e.Spawn([](PcpAllocator& a) -> Task<> {
    PageFrame* f = co_await a.Alloc(0);
    EXPECT_NE(f, nullptr);
    EXPECT_EQ(f->state, PageFrame::State::kAllocated);
    co_await a.Free(0, f);
  }(alloc));
  e.Run();
}

TEST(PcpAllocatorTest, RefillBatchesFromBuddy) {
  Engine e;
  FramePool pool(256);
  BuddyAllocator buddy(pool);
  PcpAllocator alloc(buddy, 2, {}, /*batch=*/8);
  e.Spawn([](PcpAllocator& a, BuddyAllocator& b) -> Task<> {
    co_await a.Alloc(0);
    // One refill pulled `batch` pages out of the buddy.
    EXPECT_EQ(b.free_pages(), 256u - 8u);
    EXPECT_EQ(a.CacheSize(0), 7u);  // batch minus the returned page
    co_await a.Alloc(0);
    EXPECT_EQ(a.CacheSize(0), 6u);
    EXPECT_EQ(b.free_pages(), 256u - 8u);  // served from cache
  }(alloc, buddy));
  e.Run();
}

TEST(PcpAllocatorTest, ExhaustionReturnsNull) {
  Engine e;
  FramePool pool(16);
  BuddyAllocator buddy(pool);
  PcpAllocator alloc(buddy, 1, {}, /*batch=*/4);
  e.Spawn([](PcpAllocator& a) -> Task<> {
    for (int i = 0; i < 16; ++i) {
      EXPECT_NE(co_await a.Alloc(0), nullptr);
    }
    EXPECT_EQ(co_await a.Alloc(0), nullptr);
  }(alloc));
  e.Run();
}

Task<> Hammer(PageAllocator& a, CoreId core, int iters, WaitGroup& wg) {
  for (int i = 0; i < iters; ++i) {
    PageFrame* f = co_await a.Alloc(core);
    EXPECT_NE(f, nullptr);
    co_await Delay{50};
    co_await a.Free(core, f);
  }
  wg.Done();
}

TEST(GlobalMutexAllocatorTest, ContentionGrowsWithCores) {
  auto wait_per_op = [](int cores) {
    Engine e;
    FramePool pool(4096);
    BuddyAllocator buddy(pool);
    GlobalMutexAllocator alloc(buddy);
    WaitGroup wg;
    for (int c = 0; c < cores; ++c) {
      wg.Add();
      e.Spawn(Hammer(alloc, c, 100, wg));
    }
    e.Run();
    return alloc.lock_stats().mean_wait_ns();
  };
  double solo = wait_per_op(1);
  double crowd = wait_per_op(16);
  EXPECT_EQ(solo, 0.0);       // uncontended
  EXPECT_GT(crowd, 1000.0);   // queueing delay dominates
}

TEST(MultilayerAllocatorTest, EvictorBatchFeedsFaultPathWithoutBuddy) {
  Engine e;
  FramePool pool(1024);
  BuddyAllocator buddy(pool);
  MultilayerAllocator alloc(buddy, 4, {}, /*core_cache_batch=*/8);
  e.Spawn([](MultilayerAllocator& a, BuddyAllocator& b) -> Task<> {
    // Cold start: core 0 falls through to the buddy.
    PageFrame* f0 = co_await a.Alloc(0);
    EXPECT_NE(f0, nullptr);
    uint64_t buddy_free_after_cold = b.free_pages();

    // "Evictor" on core 3 reclaims a batch into the shared queue.
    std::vector<PageFrame*> batch;
    for (int i = 0; i < 16; ++i) {
      PageFrame* f = co_await a.Alloc(3);
      EXPECT_NE(f, nullptr);
      batch.push_back(f);
    }
    uint64_t buddy_free_before = b.free_pages();
    co_await a.FreeBatch(3, batch);
    EXPECT_EQ(a.shared_queue_size(), 16u);
    EXPECT_EQ(b.free_pages(), buddy_free_before);  // buddy untouched

    // A different core's fault path drains the shared queue, not the buddy.
    PageFrame* f1 = co_await a.Alloc(2);
    EXPECT_NE(f1, nullptr);
    EXPECT_EQ(b.free_pages(), buddy_free_before);
    EXPECT_LT(a.shared_queue_size(), 16u);
    (void)buddy_free_after_cold;
  }(alloc, buddy));
  e.Run();
}

TEST(MultilayerAllocatorTest, GlobalFreeCountsQueueAndBuddy) {
  Engine e;
  FramePool pool(64);
  BuddyAllocator buddy(pool);
  MultilayerAllocator alloc(buddy, 2, {}, 4);
  e.Spawn([](MultilayerAllocator& a, BuddyAllocator& b) -> Task<> {
    std::vector<PageFrame*> batch;
    for (int i = 0; i < 8; ++i) batch.push_back(co_await a.Alloc(0));
    co_await a.FreeBatch(1, batch);
    EXPECT_EQ(a.global_free_pages(), b.free_pages() + 8u);
  }(alloc, buddy));
  e.Run();
}

TEST(MultilayerAllocatorTest, FaultPathCheaperThanGlobalMutexUnderLoad) {
  auto mean_alloc_ns = [](bool multilayer) {
    Engine e;
    FramePool pool(1 << 14);
    BuddyAllocator buddy(pool);
    std::unique_ptr<PageAllocator> a;
    if (multilayer) {
      a = std::make_unique<MultilayerAllocator>(buddy, 16);
    } else {
      a = std::make_unique<GlobalMutexAllocator>(buddy);
    }
    WaitGroup wg;
    for (int c = 0; c < 16; ++c) {
      wg.Add();
      e.Spawn(Hammer(*a, c, 200, wg));
    }
    e.Run();
    return static_cast<double>(a->alloc_time_total()) / static_cast<double>(a->allocs());
  };
  EXPECT_LT(mean_alloc_ns(true) * 3, mean_alloc_ns(false));
}

}  // namespace
}  // namespace magesim
