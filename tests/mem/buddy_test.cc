#include "src/mem/buddy_allocator.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/sim/random.h"

namespace magesim {
namespace {

TEST(BuddyTest, InitialStateAllFree) {
  FramePool pool(1024);
  BuddyAllocator b(pool);
  EXPECT_EQ(b.free_pages(), 1024u);
  EXPECT_EQ(b.total_pages(), 1024u);
  EXPECT_TRUE(b.CheckConsistency());
  EXPECT_EQ(b.FreeListSize(BuddyAllocator::kMaxOrder), 1u);
}

TEST(BuddyTest, NonPowerOfTwoPoolIsFullyCovered) {
  FramePool pool(1000);
  BuddyAllocator b(pool);
  EXPECT_EQ(b.free_pages(), 1000u);
  EXPECT_TRUE(b.CheckConsistency());
}

TEST(BuddyTest, AllocSetsStateAndDecrementsFree) {
  FramePool pool(64);
  BuddyAllocator b(pool);
  PageFrame* f = b.AllocPage();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->state, PageFrame::State::kAllocated);
  EXPECT_EQ(b.free_pages(), 63u);
  EXPECT_TRUE(b.CheckConsistency());
}

TEST(BuddyTest, SplitAndCoalesceRoundTrip) {
  FramePool pool(1024);
  BuddyAllocator b(pool);
  uint32_t blk = b.AllocBlock(3);  // 8 pages
  ASSERT_NE(blk, BuddyAllocator::kNoBlock);
  EXPECT_EQ(blk % 8, 0u);  // order-aligned
  EXPECT_EQ(b.free_pages(), 1016u);
  b.FreeBlock(blk, 3);
  EXPECT_EQ(b.free_pages(), 1024u);
  // Fully coalesced back to one max-order block.
  EXPECT_EQ(b.FreeListSize(BuddyAllocator::kMaxOrder), 1u);
  EXPECT_TRUE(b.CheckConsistency());
}

TEST(BuddyTest, ExhaustionReturnsNoBlock) {
  FramePool pool(16);
  BuddyAllocator b(pool);
  std::vector<PageFrame*> frames;
  for (int i = 0; i < 16; ++i) {
    PageFrame* f = b.AllocPage();
    ASSERT_NE(f, nullptr);
    frames.push_back(f);
  }
  EXPECT_EQ(b.AllocPage(), nullptr);
  EXPECT_EQ(b.free_pages(), 0u);
  for (PageFrame* f : frames) b.FreePage(f);
  EXPECT_EQ(b.free_pages(), 16u);
  EXPECT_TRUE(b.CheckConsistency());
}

TEST(BuddyTest, NoDoubleHandoutOfFrames) {
  FramePool pool(256);
  BuddyAllocator b(pool);
  std::set<uint32_t> seen;
  for (int i = 0; i < 256; ++i) {
    PageFrame* f = b.AllocPage();
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(seen.insert(f->pfn).second) << "pfn " << f->pfn << " handed out twice";
  }
}

TEST(BuddyTest, RandomizedStressKeepsInvariants) {
  FramePool pool(2048);
  BuddyAllocator b(pool);
  Rng rng(42);
  struct Held {
    uint32_t pfn;
    int order;
  };
  std::vector<Held> held;
  for (int iter = 0; iter < 5000; ++iter) {
    if (held.empty() || rng.NextBool(0.55)) {
      int order = static_cast<int>(rng.NextU64(4));
      uint32_t blk = b.AllocBlock(order);
      if (blk != BuddyAllocator::kNoBlock) {
        held.push_back({blk, order});
      }
    } else {
      size_t i = rng.NextU64(held.size());
      b.FreeBlock(held[i].pfn, held[i].order);
      held[i] = held.back();
      held.pop_back();
    }
  }
  EXPECT_TRUE(b.CheckConsistency());
  for (auto& h : held) b.FreeBlock(h.pfn, h.order);
  EXPECT_EQ(b.free_pages(), 2048u);
  EXPECT_TRUE(b.CheckConsistency());
}

TEST(BuddyTest, WorkCounterReflectsSplitDepth) {
  FramePool pool(1024);
  BuddyAllocator b(pool);
  b.AllocBlock(0);  // splits from order 10 down to 0
  int deep_split_work = b.last_op_work();
  b.AllocBlock(0);  // order-0 block now available directly
  int shallow_work = b.last_op_work();
  EXPECT_GT(deep_split_work, shallow_work);
}

TEST(FramePoolTest, CountInState) {
  FramePool pool(32);
  BuddyAllocator b(pool);
  EXPECT_EQ(pool.CountInState(PageFrame::State::kFree), 32u);
  b.AllocPage();
  b.AllocPage();
  EXPECT_EQ(pool.CountInState(PageFrame::State::kAllocated), 2u);
  EXPECT_EQ(pool.CountInState(PageFrame::State::kFree), 30u);
}

}  // namespace
}  // namespace magesim
