#include "src/mem/page_table.h"

#include <gtest/gtest.h>

#include "src/sim/engine.h"

namespace magesim {
namespace {

TEST(PageTableTest, MapUnmapRoundTrip) {
  PageTable pt(128);
  FramePool pool(8);
  PageFrame* f = &pool.frame(3);
  f->state = PageFrame::State::kAllocated;

  pt.Map(42, f);
  EXPECT_TRUE(pt.At(42).present);
  EXPECT_TRUE(pt.At(42).accessed);  // faulting access counts as a reference
  EXPECT_FALSE(pt.At(42).dirty);
  EXPECT_EQ(pt.At(42).frame, f);
  EXPECT_EQ(f->state, PageFrame::State::kMapped);
  EXPECT_EQ(f->vpn, 42u);
  EXPECT_EQ(pt.mapped_pages(), 1u);

  pt.At(42).dirty = true;  // simulated write access
  PageFrame* out = pt.Unmap(42);
  EXPECT_EQ(out, f);
  EXPECT_TRUE(out->dirty);  // dirty bit transferred to the frame
  EXPECT_FALSE(pt.At(42).present);
  EXPECT_EQ(pt.mapped_pages(), 0u);
  EXPECT_EQ(out->state, PageFrame::State::kIsolated);
}

TEST(PageTableTest, FaultDedupOnlyOneWinner) {
  PageTable pt(16);
  EXPECT_TRUE(pt.TryBeginFault(5));
  EXPECT_FALSE(pt.TryBeginFault(5));
  EXPECT_TRUE(pt.TryBeginFault(6));  // different page unaffected
  pt.EndFault(5);
  EXPECT_TRUE(pt.TryBeginFault(5));
}

TEST(PageTableTest, WaitersWakeOnEndFault) {
  Engine e;
  PageTable pt(16);
  ASSERT_TRUE(pt.TryBeginFault(7));
  std::vector<SimTime> woke;
  auto waiter = [](Engine& e, PageTable& pt, std::vector<SimTime>& woke) -> Task<> {
    co_await pt.WaitForFault(7);
    woke.push_back(e.now());
  };
  e.Spawn(waiter(e, pt, woke));
  e.Spawn(waiter(e, pt, woke));
  auto finisher = [](PageTable& pt) -> Task<> {
    co_await Delay{500};
    pt.EndFault(7);
  };
  e.Spawn(finisher(pt));
  e.Run();
  ASSERT_EQ(woke.size(), 2u);
  EXPECT_EQ(woke[0], 500);
  EXPECT_EQ(woke[1], 500);
  EXPECT_EQ(pt.dedup_waits(), 2u);
}

TEST(PageTableTest, SwapSlotPersistsAcrossMapping) {
  PageTable pt(16);
  pt.At(3).swap_slot = 777;
  FramePool pool(2);
  PageFrame* f = &pool.frame(0);
  f->state = PageFrame::State::kAllocated;
  pt.Map(3, f);
  EXPECT_EQ(pt.At(3).swap_slot, 777u);  // kept until explicitly freed
}

}  // namespace
}  // namespace magesim
