#!/usr/bin/env python3
"""Property test: every bench/perf_* harness is deterministic.

Runs each harness binary (passed as argv) twice with identical settings and
asserts the two BENCH_*.json outputs are identical once the wall-clock group
("wall") is stripped. Everything else — schema, name, reps, scale, and every
"sim" metric — must match bit-for-bit; the sim group feeding the CI perf gate
(tools/perf_diff.py) is only meaningful if same-seed runs can't drift.

Runs at smoke reps (MAGESIM_BENCH_REPS=0:1): sim metrics are per-rep values,
so rep count does not affect them.
"""

import json
import os
import subprocess
import sys
import tempfile


def run_harness(binary, out_dir):
    env = dict(os.environ)
    env["MAGESIM_BENCH_REPS"] = "0:1"
    env["MAGESIM_BENCH_OUT_DIR"] = out_dir
    subprocess.run([binary], env=env, check=True,
                   stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
    names = [n for n in os.listdir(out_dir)
             if n.startswith("BENCH_") and n.endswith(".json")]
    if len(names) != 1:
        raise AssertionError(
            f"{binary}: expected exactly one BENCH_*.json in {out_dir}, "
            f"got {names}")
    with open(os.path.join(out_dir, names[0])) as f:
        return names[0], json.load(f)


def strip_wall(doc):
    return {k: v for k, v in doc.items() if k != "wall"}


def main():
    binaries = sys.argv[1:]
    if not binaries:
        print("usage: bench_determinism_test.py PERF_BINARY...", file=sys.stderr)
        return 2
    failures = []
    for binary in binaries:
        with tempfile.TemporaryDirectory() as d1, \
             tempfile.TemporaryDirectory() as d2:
            name1, doc1 = run_harness(binary, d1)
            name2, doc2 = run_harness(binary, d2)
        if name1 != name2:
            failures.append(f"{binary}: output file name changed between "
                            f"runs: {name1} != {name2}")
            continue
        a, b = strip_wall(doc1), strip_wall(doc2)
        if a != b:
            failures.append(
                f"{binary}: same-seed runs diverged (modulo wall clock):\n"
                f"  run1: {json.dumps(a, sort_keys=True)}\n"
                f"  run2: {json.dumps(b, sort_keys=True)}")
        else:
            print(f"ok: {os.path.basename(binary)} deterministic "
                  f"({len(doc1.get('sim', {}))} sim metrics)")
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
