// Tests for the alternative page-replacement policies (S3-FIFO, MGLRU).
#include <gtest/gtest.h>

#include "src/accounting/mglru.h"
#include "src/accounting/s3fifo.h"
#include "src/sim/engine.h"

namespace magesim {
namespace {

struct Fixture {
  explicit Fixture(uint64_t n) : pool(n), pt(n) {
    for (uint64_t i = 0; i < n; ++i) {
      PageFrame& f = pool.frame(static_cast<uint32_t>(i));
      f.state = PageFrame::State::kAllocated;
      pt.Map(i, &f);
      pt.At(i).accessed = false;
    }
  }
  FramePool pool;
  PageTable pt;
};

// --------------------------- S3-FIFO ---------------------------------------

TEST(S3FifoTest, NewPagesEnterSmallQueue) {
  Engine e;
  Fixture fx(64);
  S3Fifo s3(fx.pt);
  e.Spawn([](Fixture& fx, S3Fifo& s3) -> Task<> {
    for (uint32_t i = 0; i < 16; ++i) co_await s3.Insert(0, &fx.pool.frame(i));
    EXPECT_EQ(s3.small_size(), 16u);
    EXPECT_EQ(s3.main_size(), 0u);
    EXPECT_EQ(s3.tracked_pages(), 16u);
  }(fx, s3));
  e.Run();
}

TEST(S3FifoTest, ReferencedSmallPagesPromoteToMain) {
  Engine e;
  Fixture fx(64);
  S3Fifo s3(fx.pt);
  e.Spawn([](Fixture& fx, S3Fifo& s3) -> Task<> {
    for (uint32_t i = 0; i < 16; ++i) co_await s3.Insert(0, &fx.pool.frame(i));
    for (uint64_t i = 0; i < 4; ++i) fx.pt.At(i).accessed = true;
    std::vector<PageFrame*> victims;
    co_await s3.IsolateBatch(0, 0, 8, &victims);
    EXPECT_EQ(victims.size(), 8u);
    for (PageFrame* v : victims) EXPECT_GE(v->pfn, 4u);  // hot pages survived
    EXPECT_EQ(s3.main_size(), 4u);
    EXPECT_GT(s3.ghost_size(), 0u);  // evicted Small pages leave ghosts
  }(fx, s3));
  e.Run();
}

TEST(S3FifoTest, GhostHitRefaultsIntoMain) {
  Engine e;
  Fixture fx(64);
  S3Fifo s3(fx.pt);
  e.Spawn([](Fixture& fx, S3Fifo& s3) -> Task<> {
    for (uint32_t i = 0; i < 8; ++i) co_await s3.Insert(0, &fx.pool.frame(i));
    std::vector<PageFrame*> victims;
    co_await s3.IsolateBatch(0, 0, 4, &victims);
    EXPECT_EQ(victims.size(), 4u);
    // "Refault" the first victim: its vpn is in the ghost, so it enters Main.
    PageFrame* back = victims[0];
    co_await s3.Insert(0, back);
    EXPECT_EQ(s3.ghost_hits(), 1u);
    EXPECT_EQ(back->lru_list, 1);  // main queue id
  }(fx, s3));
  e.Run();
}

TEST(S3FifoTest, MainUsesLazyFrequencyDecay) {
  Engine e;
  Fixture fx(64);
  S3Fifo s3(fx.pt);
  e.Spawn([](Fixture& fx, S3Fifo& s3) -> Task<> {
    // Build a Main-resident hot page: insert, reference, scan (promotes).
    for (uint32_t i = 0; i < 8; ++i) co_await s3.Insert(0, &fx.pool.frame(i));
    fx.pt.At(0).accessed = true;
    std::vector<PageFrame*> victims;
    co_await s3.IsolateBatch(0, 0, 7, &victims);
    EXPECT_EQ(s3.main_size(), 1u);
    // Never referenced again: frequency decays one scan at a time until it
    // finally evicts. freq was 1 after promotion -> survives one Main scan.
    victims.clear();
    co_await s3.IsolateBatch(0, 0, 1, &victims);  // decays freq 1 -> 0
    EXPECT_TRUE(victims.empty());
    co_await s3.IsolateBatch(0, 0, 1, &victims);  // now evicts
    EXPECT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0]->pfn, 0u);
  }(fx, s3));
  e.Run();
}

TEST(S3FifoTest, UnlinkFromEitherQueue) {
  Engine e;
  Fixture fx(8);
  S3Fifo s3(fx.pt);
  e.Spawn([](Fixture& fx, S3Fifo& s3) -> Task<> {
    co_await s3.Insert(0, &fx.pool.frame(0));
    co_await s3.Insert(0, &fx.pool.frame(1));
    s3.Unlink(&fx.pool.frame(0));
    EXPECT_EQ(s3.tracked_pages(), 1u);
    s3.Unlink(&fx.pool.frame(0));  // idempotent
    EXPECT_EQ(s3.tracked_pages(), 1u);
  }(fx, s3));
  e.Run();
}

// ----------------------------- MGLRU ---------------------------------------

TEST(MgLruTest, InsertGoesToYoungestSetupToOldest) {
  Engine e;
  Fixture fx(16);
  MgLru lru(fx.pt);
  lru.InsertSetup(0, &fx.pool.frame(0));
  e.Spawn([](Fixture& fx, MgLru& lru) -> Task<> {
    co_await lru.Insert(0, &fx.pool.frame(1));
    EXPECT_EQ(lru.GenerationSize(0), 1u);                       // oldest
    EXPECT_EQ(lru.GenerationSize(MgLru::kGenerations - 1), 1u); // youngest
  }(fx, lru));
  e.Run();
}

TEST(MgLruTest, EvictsOldestGenerationFirst) {
  Engine e;
  Fixture fx(16);
  MgLru lru(fx.pt);
  for (uint32_t i = 0; i < 4; ++i) lru.InsertSetup(0, &fx.pool.frame(i));  // oldest gen
  e.Spawn([](Fixture& fx, MgLru& lru) -> Task<> {
    for (uint32_t i = 4; i < 8; ++i) co_await lru.Insert(0, &fx.pool.frame(i));  // youngest
    std::vector<PageFrame*> victims;
    co_await lru.IsolateBatch(0, 0, 4, &victims);
    EXPECT_EQ(victims.size(), 4u);
    for (PageFrame* v : victims) EXPECT_LT(v->pfn, 4u);  // old pages first
  }(fx, lru));
  e.Run();
}

TEST(MgLruTest, ReferencedPagesPromoteToYoungest) {
  Engine e;
  Fixture fx(16);
  MgLru lru(fx.pt);
  for (uint32_t i = 0; i < 8; ++i) lru.InsertSetup(0, &fx.pool.frame(i));
  fx.pt.At(2).accessed = true;
  e.Spawn([](Fixture& fx, MgLru& lru) -> Task<> {
    std::vector<PageFrame*> victims;
    co_await lru.IsolateBatch(0, 0, 8, &victims);
    EXPECT_EQ(victims.size(), 7u);
    for (PageFrame* v : victims) EXPECT_NE(v->pfn, 2u);
    EXPECT_EQ(fx.pool.frame(2).lru_list, lru.kGenerations - 1 >= 0
                                             ? fx.pool.frame(2).lru_list
                                             : -1);  // still tracked
    EXPECT_EQ(lru.tracked_pages(), 1u);
    EXPECT_EQ(lru.stats().reactivated, 1u);
  }(fx, lru));
  e.Run();
}

TEST(MgLruTest, AgingAdvancesWhenOldestDrains) {
  Engine e;
  Fixture fx(32);
  MgLru lru(fx.pt);
  for (uint32_t i = 0; i < 4; ++i) lru.InsertSetup(0, &fx.pool.frame(i));
  e.Spawn([](Fixture& fx, MgLru& lru) -> Task<> {
    for (uint32_t i = 4; i < 8; ++i) co_await lru.Insert(0, &fx.pool.frame(i));
    std::vector<PageFrame*> victims;
    // Drain the oldest generation, then keep going: aging must advance and
    // serve the younger generation instead of stalling.
    co_await lru.IsolateBatch(0, 0, 8, &victims);
    EXPECT_EQ(victims.size(), 8u);
    EXPECT_GT(lru.agings(), 0u);
    EXPECT_EQ(lru.tracked_pages(), 0u);
  }(fx, lru));
  e.Run();
}

}  // namespace
}  // namespace magesim
