// Edge-case unit tests for FrameList (src/accounting/intrusive_list.h), the
// intrusive linkage every accounting policy's hot path leans on: unlink while
// iterating, whole-list splice, relocation of the containing PageFrame
// storage, and empty-list pops.
#include "src/accounting/intrusive_list.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/mem/frame_pool.h"

namespace magesim {
namespace {

// Frames with distinct pfns; lru_list stamped the way the policies do it so
// linked() reflects membership.
std::vector<PageFrame> MakeFrames(int n) {
  std::vector<PageFrame> frames(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    frames[static_cast<size_t>(i)].pfn = static_cast<uint32_t>(i);
  }
  return frames;
}

std::vector<uint32_t> Pfns(const FrameList& l) {
  std::vector<uint32_t> out;
  for (PageFrame* f = l.front(); f != nullptr; f = f->next) {
    out.push_back(f->pfn);
  }
  return out;
}

TEST(FrameListTest, EmptyListPopReturnsNull) {
  FrameList l;
  EXPECT_EQ(l.PopFront(), nullptr);
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.size(), 0u);
  EXPECT_EQ(l.front(), nullptr);
  EXPECT_EQ(l.back(), nullptr);
  // Popping an already-empty list repeatedly must stay a no-op.
  EXPECT_EQ(l.PopFront(), nullptr);
}

TEST(FrameListTest, PushPopFifoOrder) {
  auto frames = MakeFrames(4);
  FrameList l;
  for (auto& f : frames) l.PushBack(&f);
  EXPECT_EQ(l.size(), 4u);
  for (uint32_t want = 0; want < 4; ++want) {
    PageFrame* f = l.PopFront();
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->pfn, want);
    // Popped nodes must leave with clean linkage, ready for reinsertion.
    EXPECT_EQ(f->prev, nullptr);
    EXPECT_EQ(f->next, nullptr);
  }
  EXPECT_TRUE(l.empty());
}

TEST(FrameListTest, PushFrontThenBack) {
  auto frames = MakeFrames(3);
  FrameList l;
  l.PushBack(&frames[1]);
  l.PushFront(&frames[0]);
  l.PushBack(&frames[2]);
  EXPECT_EQ(Pfns(l), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(l.front()->pfn, 0u);
  EXPECT_EQ(l.back()->pfn, 2u);
}

TEST(FrameListTest, RemoveHeadMiddleTail) {
  auto frames = MakeFrames(5);
  FrameList l;
  for (auto& f : frames) l.PushBack(&f);

  l.Remove(&frames[2]);  // middle
  EXPECT_EQ(Pfns(l), (std::vector<uint32_t>{0, 1, 3, 4}));
  l.Remove(&frames[0]);  // head
  EXPECT_EQ(Pfns(l), (std::vector<uint32_t>{1, 3, 4}));
  EXPECT_EQ(l.front()->pfn, 1u);
  l.Remove(&frames[4]);  // tail
  EXPECT_EQ(Pfns(l), (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(l.back()->pfn, 3u);
  EXPECT_EQ(l.size(), 2u);

  // Removed nodes are reusable immediately.
  l.PushBack(&frames[2]);
  EXPECT_EQ(Pfns(l), (std::vector<uint32_t>{1, 3, 2}));
}

// The evictor-scan pattern: walk the list while unlinking some nodes mid-walk
// (grab `next` before removing, like list_for_each_safe).
TEST(FrameListTest, UnlinkWhileIterating) {
  auto frames = MakeFrames(6);
  FrameList l;
  for (auto& f : frames) l.PushBack(&f);

  for (PageFrame* f = l.front(); f != nullptr;) {
    PageFrame* next = f->next;
    if (f->pfn % 2 == 0) l.Remove(f);
    f = next;
  }
  EXPECT_EQ(Pfns(l), (std::vector<uint32_t>{1, 3, 5}));
  EXPECT_EQ(l.size(), 3u);

  // Second pass removing everything, including head and tail, mid-iteration.
  for (PageFrame* f = l.front(); f != nullptr;) {
    PageFrame* next = f->next;
    l.Remove(f);
    f = next;
  }
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.front(), nullptr);
  EXPECT_EQ(l.back(), nullptr);
}

TEST(FrameListTest, SpliceBackPreservesOrderAndEmptiesSource) {
  auto frames = MakeFrames(5);
  FrameList a, b;
  a.PushBack(&frames[0]);
  a.PushBack(&frames[1]);
  b.PushBack(&frames[2]);
  b.PushBack(&frames[3]);
  b.PushBack(&frames[4]);

  a.SpliceBack(b);
  EXPECT_EQ(Pfns(a), (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(a.size(), 5u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.front(), nullptr);
  EXPECT_EQ(b.back(), nullptr);

  // The spliced boundary nodes must be properly cross-linked: removing around
  // the seam exercises prev/next on both sides of it.
  a.Remove(&frames[1]);
  a.Remove(&frames[2]);
  EXPECT_EQ(Pfns(a), (std::vector<uint32_t>{0, 3, 4}));
}

TEST(FrameListTest, SpliceBackEdgeCases) {
  auto frames = MakeFrames(2);
  FrameList a, b, c;

  // Empty into empty: no-op.
  a.SpliceBack(b);
  EXPECT_TRUE(a.empty());

  // Non-empty into empty: destination adopts the whole list.
  b.PushBack(&frames[0]);
  b.PushBack(&frames[1]);
  a.SpliceBack(b);
  EXPECT_EQ(Pfns(a), (std::vector<uint32_t>{0, 1}));
  EXPECT_TRUE(b.empty());

  // Empty into non-empty: destination unchanged.
  a.SpliceBack(c);
  EXPECT_EQ(Pfns(a), (std::vector<uint32_t>{0, 1}));

  // The source is reusable after being drained by a splice.
  b.PushBack(a.PopFront());
  EXPECT_EQ(Pfns(b), (std::vector<uint32_t>{0}));
}

// PageFrame objects live in FramePool's flat vector; a frame *move* (e.g. a
// pool embedded in a moved-from container) relocates the structs but the
// intrusive pointers keep referring to the old addresses. This pins the
// contract: linkage survives moving the CONTAINER of the pointers (FrameList
// itself is moved wholesale), while the frames themselves must stay
// address-stable. The test moves the FrameList value and verifies the chain
// is intact at the new location.
TEST(FrameListTest, MoveOfContainingListKeepsLinkage) {
  auto frames = MakeFrames(3);
  FrameList a;
  for (auto& f : frames) a.PushBack(&f);

  // FrameList has no pointers back into itself (just head/tail/size), so a
  // byte-wise move of the list object is safe. This is what std::vector
  // reallocation does to the per-partition lists in PartitionedFifo.
  std::vector<FrameList> holder;
  holder.push_back(std::move(a));
  holder.reserve(32);  // force reallocation: the list object itself relocates
  FrameList& moved = holder[0];

  EXPECT_EQ(Pfns(moved), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(moved.size(), 3u);
  moved.Remove(&frames[1]);
  EXPECT_EQ(Pfns(moved), (std::vector<uint32_t>{0, 2}));
  PageFrame* f = moved.PopFront();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->pfn, 0u);
  EXPECT_EQ(moved.back()->pfn, 2u);
}

}  // namespace
}  // namespace magesim
