#include <gtest/gtest.h>

#include "src/accounting/global_lru.h"
#include "src/accounting/partitioned_fifo.h"
#include "src/sim/engine.h"

namespace magesim {
namespace {

// Builds a pool whose frames are all "mapped" at vpn == pfn for accounting
// tests.
struct Fixture {
  explicit Fixture(uint64_t n) : pool(n), pt(n) {
    for (uint64_t i = 0; i < n; ++i) {
      PageFrame& f = pool.frame(static_cast<uint32_t>(i));
      f.state = PageFrame::State::kAllocated;
      pt.Map(i, &f);
      pt.At(i).accessed = false;  // tests control the reference bit
    }
  }
  FramePool pool;
  PageTable pt;
};

TEST(GlobalLruTest, InsertThenIsolateFifoOrder) {
  Engine e;
  Fixture fx(16);
  GlobalLru lru(fx.pt);
  e.Spawn([](Fixture& fx, GlobalLru& lru) -> Task<> {
    for (uint32_t i = 0; i < 8; ++i) co_await lru.Insert(0, &fx.pool.frame(i));
    EXPECT_EQ(lru.tracked_pages(), 8u);
    std::vector<PageFrame*> victims;
    size_t got = co_await lru.IsolateBatch(0, 0, 4, &victims);
    EXPECT_EQ(got, 4u);
    EXPECT_EQ(victims.size(), 4u);
    // Oldest (first-inserted) pages are selected first.
    for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(victims[i]->pfn, i);
    EXPECT_EQ(lru.tracked_pages(), 4u);
    for (PageFrame* v : victims) EXPECT_FALSE(v->linked());
  }(fx, lru));
  e.Run();
}

TEST(GlobalLruTest, SecondChanceReactivatesAccessedPages) {
  Engine e;
  Fixture fx(16);
  GlobalLru lru(fx.pt);
  e.Spawn([](Fixture& fx, GlobalLru& lru) -> Task<> {
    for (uint32_t i = 0; i < 8; ++i) co_await lru.Insert(0, &fx.pool.frame(i));
    // Pages 0..3 are hot.
    for (uint64_t i = 0; i < 4; ++i) fx.pt.At(i).accessed = true;
    std::vector<PageFrame*> victims;
    co_await lru.IsolateBatch(0, 0, 4, &victims);
    EXPECT_EQ(victims.size(), 4u);
    for (PageFrame* v : victims) EXPECT_GE(v->pfn, 4u);  // cold pages chosen
    EXPECT_EQ(lru.stats().reactivated, 4u);
    EXPECT_EQ(lru.active_size(), 4u);
    // The second chance cleared the reference bits.
    for (uint64_t i = 0; i < 4; ++i) EXPECT_FALSE(fx.pt.At(i).accessed);
  }(fx, lru));
  e.Run();
}

TEST(GlobalLruTest, BalanceDemotesActivePagesWhenInactiveEmpty) {
  Engine e;
  Fixture fx(16);
  GlobalLru lru(fx.pt);
  e.Spawn([](Fixture& fx, GlobalLru& lru) -> Task<> {
    for (uint32_t i = 0; i < 8; ++i) co_await lru.Insert(0, &fx.pool.frame(i));
    for (uint64_t i = 0; i < 8; ++i) fx.pt.At(i).accessed = true;
    std::vector<PageFrame*> victims;
    // All hot: first pass reactivates everything, balance demotes, and the
    // second pass can then isolate demoted pages.
    size_t got = co_await lru.IsolateBatch(0, 0, 4, &victims);
    EXPECT_GT(got, 0u);
    EXPECT_GT(lru.stats().reactivated, 0u);
  }(fx, lru));
  e.Run();
}

TEST(GlobalLruTest, UnlinkRemovesFromEitherList) {
  Engine e;
  Fixture fx(8);
  GlobalLru lru(fx.pt);
  e.Spawn([](Fixture& fx, GlobalLru& lru) -> Task<> {
    co_await lru.Insert(0, &fx.pool.frame(0));
    co_await lru.Insert(0, &fx.pool.frame(1));
    lru.Unlink(&fx.pool.frame(0));
    EXPECT_EQ(lru.tracked_pages(), 1u);
    lru.Unlink(&fx.pool.frame(0));  // idempotent
    EXPECT_EQ(lru.tracked_pages(), 1u);
  }(fx, lru));
  e.Run();
}

Task<> InsertWorker(PageAccounting& acc, Fixture& fx, uint32_t base, int n, CoreId core,
                    WaitGroup& wg) {
  for (int i = 0; i < n; ++i) {
    co_await acc.Insert(core, &fx.pool.frame(base + static_cast<uint32_t>(i)));
    co_await Delay{30};
  }
  wg.Done();
}

TEST(ContentionTest, PartitionedFifoContendsLessThanGlobalLru) {
  auto total_wait = [](bool partitioned) -> SimTime {
    Engine e;
    Fixture fx(16 * 64);
    std::unique_ptr<PageAccounting> acc;
    if (partitioned) {
      acc = std::make_unique<PartitionedFifo>(fx.pt, 16, 4);
    } else {
      acc = std::make_unique<GlobalLru>(fx.pt);
    }
    WaitGroup wg;
    for (int c = 0; c < 16; ++c) {
      wg.Add();
      e.Spawn(InsertWorker(*acc, fx, static_cast<uint32_t>(c) * 64, 64, c, wg));
    }
    e.Run();
    return acc->AggregateLockStats().total_wait_ns;
  };
  SimTime global_wait = total_wait(false);
  SimTime part_wait = total_wait(true);
  EXPECT_LT(part_wait * 5, global_wait);
}

TEST(PartitionedFifoTest, InsertHashesByCore) {
  Engine e;
  Fixture fx(64);
  PartitionedFifo fifo(fx.pt, 8, 4);
  e.Spawn([](Fixture& fx, PartitionedFifo& fifo) -> Task<> {
    for (uint32_t i = 0; i < 64; ++i) {
      co_await fifo.Insert(static_cast<CoreId>(i % 16), &fx.pool.frame(i));
    }
    EXPECT_EQ(fifo.tracked_pages(), 64u);
    // Pages land in multiple partitions, not one.
    int nonempty = 0;
    for (int p = 0; p < fifo.num_partitions(); ++p) {
      if (fifo.PartitionSize(p) > 0) ++nonempty;
    }
    EXPECT_GT(nonempty, 2);
  }(fx, fifo));
  e.Run();
}

TEST(PartitionedFifoTest, EvictorsStartAtDistinctPartitions) {
  Engine e;
  Fixture fx(256);
  PartitionedFifo fifo(fx.pt, 8, 4);
  e.Spawn([](Fixture& fx, PartitionedFifo& fifo) -> Task<> {
    for (uint32_t i = 0; i < 256; ++i) {
      co_await fifo.Insert(static_cast<CoreId>(i % 32), &fx.pool.frame(i));
    }
    std::vector<PageFrame*> v0, v1;
    co_await fifo.IsolateBatch(0, 0, 8, &v0);
    co_await fifo.IsolateBatch(2, 0, 8, &v1);
    EXPECT_EQ(v0.size(), 8u);
    EXPECT_EQ(v1.size(), 8u);
    // Different evictors pull from different partitions: victim sets disjoint.
    for (PageFrame* a : v0) {
      for (PageFrame* b : v1) EXPECT_NE(a, b);
    }
  }(fx, fifo));
  e.Run();
}

TEST(PartitionedFifoTest, TwoTouchProtectsHotPagesOnly) {
  Engine e;
  Fixture fx(64);
  PartitionedFifo fifo(fx.pt, 1, 1);  // single partition: deterministic order
  e.Spawn([](Fixture& fx, PartitionedFifo& fifo) -> Task<> {
    for (uint32_t i = 0; i < 16; ++i) co_await fifo.Insert(0, &fx.pool.frame(i));
    auto touch_hot = [&fx]() {
      for (uint64_t i = 0; i < 4; ++i) fx.pt.At(i).accessed = true;
    };

    // Pages 0..3 are touched before every scan (hot); 4..15 never again.
    // Repeated scans must evict all cold pages and none of the hot ones.
    std::vector<PageFrame*> victims;
    for (int round = 0; round < 6; ++round) {
      touch_hot();
      co_await fifo.IsolateBatch(0, 0, 4, &victims);
    }
    EXPECT_EQ(victims.size(), 12u);
    for (PageFrame* v : victims) EXPECT_GE(v->pfn, 4u);
    // The hot set was protected via the two-touch filter: reactivations
    // were observed once pages proved hot on consecutive scans.
    EXPECT_GT(fifo.stats().reactivated, 0u);
    EXPECT_EQ(fifo.tracked_pages(), 4u);

    // Once the hot pages cool down, two further scans flush them too.
    victims.clear();
    co_await fifo.IsolateBatch(0, 0, 4, &victims);
    co_await fifo.IsolateBatch(0, 0, 4, &victims);
    co_await fifo.IsolateBatch(0, 0, 4, &victims);
    EXPECT_EQ(victims.size(), 4u);
    for (PageFrame* v : victims) EXPECT_LT(v->pfn, 4u);
  }(fx, fifo));
  e.Run();
}

TEST(PartitionedFifoTest, IsolateFromEmptyReturnsZero) {
  Engine e;
  Fixture fx(8);
  PartitionedFifo fifo(fx.pt, 4, 2);
  e.Spawn([](PartitionedFifo& fifo) -> Task<> {
    std::vector<PageFrame*> victims;
    EXPECT_EQ(co_await fifo.IsolateBatch(1, 0, 8, &victims), 0u);
    EXPECT_TRUE(victims.empty());
  }(fifo));
  e.Run();
}

}  // namespace
}  // namespace magesim
