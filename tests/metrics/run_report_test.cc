// Tests for the JSON writer, Prometheus exposition, and the end-to-end run
// report: same-seed determinism (modulo wall-clock fields) and the profiler's
// exact core-time attribution guarantee.
#include "src/metrics/run_report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <regex>
#include <string>

#include "src/core/farmem.h"
#include "src/workloads/seqscan.h"

namespace magesim {
namespace {

TEST(JsonWriterTest, CommasAndNestingAreAutomatic) {
  JsonWriter w;
  w.BeginObject();
  w.KV("a", int64_t{1});
  w.Key("b");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.KV("c", "x");
  w.EndObject();
  w.EndArray();
  w.KV("d", true);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[1,2,{"c":"x"}],"d":true})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject();
  w.KV("k", "quote\" slash\\ nl\n tab\t cr\r bel\x01");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"k\":\"quote\\\" slash\\\\ nl\\n tab\\t cr\\r bel\\u0001\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeZero) {
  JsonWriter w;
  w.BeginArray();
  w.Double(0.5);
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::nan(""));
  w.EndArray();
  EXPECT_EQ(w.str(), "[0.5,0,0]");
}

TEST(RunReportTest, HistogramJsonSummarizes) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 10);
  JsonWriter w;
  AppendHistogramJson(w, h);
  const std::string& s = w.str();
  EXPECT_NE(s.find("\"count\":100"), std::string::npos);
  EXPECT_NE(s.find("\"min\":10"), std::string::npos);
  EXPECT_NE(s.find("\"max\":1000"), std::string::npos);
  EXPECT_NE(s.find("\"p50\":"), std::string::npos);
  EXPECT_NE(s.find("\"p999\":"), std::string::npos);
}

TEST(RunReportTest, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.Counter("kernel.faults").Add(42);
  reg.Gauge("run.ops_per_sec").Set(1.5e6);
  reg.Hist("fault_latency_ns").Record(1000);
  std::string text = PrometheusText(reg);
  EXPECT_NE(text.find("# TYPE magesim_kernel_faults counter"), std::string::npos);
  EXPECT_NE(text.find("magesim_kernel_faults 42"), std::string::npos);
  EXPECT_NE(text.find("magesim_run_ops_per_sec"), std::string::npos);
  EXPECT_NE(text.find("magesim_fault_latency_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  // Names are fully sanitized: no '.' survives in any metric name line.
  for (size_t pos = 0; (pos = text.find("magesim_", pos)) != std::string::npos; ++pos) {
    size_t end = text.find_first_of(" {", pos);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(text.substr(pos, end - pos).find('.'), std::string::npos);
  }
}

// Minimal structural JSON check: balanced braces/brackets outside strings.
bool BalancedJson(const std::string& s) {
  int depth = 0;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (esc) {
      esc = false;
    } else if (in_str) {
      if (c == '\\') esc = true;
      if (c == '"') in_str = false;
    } else if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_str;
}

struct ReportRun {
  std::string json;
  SimTime end_time = 0;
  SimTime total_core_time = 0;   // tracked_cores * end_time
  SimTime attributed_plus_idle = 0;
};

ReportRun RunReportedMachine(uint64_t seed) {
  SeqScanWorkload wl({.region_pages = 2048, .threads = 4, .passes = 3});
  FarMemoryMachine::Options opt;
  opt.kernel = MageLibConfig();
  opt.local_mem_ratio = 0.5;
  opt.seed = seed;
  opt.time_limit = 20 * kMillisecond;
  opt.metrics.enabled = true;
  opt.metrics.sample_interval = 500 * kMicrosecond;
  FarMemoryMachine m(opt, wl);
  m.Run();

  ReportRun out;
  out.json = m.run_report_json();
  // The profiler section is normalized against the run's end_time_ns (the
  // workload-completion time, which can precede the engine's final drain
  // time); read it back from the report so the check uses the same basis.
  std::smatch match;
  if (std::regex_search(out.json, match, std::regex("\"end_time_ns\":(\\d+)"))) {
    out.end_time = static_cast<SimTime>(std::atoll(match[1].str().c_str()));
  }
  const SimProfiler& prof = *m.profiler();
  for (int c = 0; c < prof.num_cores(); ++c) {
    SimTime attributed = prof.core_attributed(c);
    if (attributed <= 0) continue;  // untracked core
    out.total_core_time += out.end_time;
    SimTime idle = out.end_time - attributed;
    if (idle < 0) idle = 0;
    out.attributed_plus_idle += attributed + idle;
  }
  return out;
}

std::string StripWallClock(const std::string& json) {
  static const std::regex kWallClock("\"wall_clock\":\\{[^}]*\\},?");
  return std::regex_replace(json, kWallClock, "");
}

TEST(RunReportTest, SameSeedRunsAreByteIdenticalModuloWallClock) {
  ReportRun a = RunReportedMachine(7);
  ReportRun b = RunReportedMachine(7);
  ASSERT_FALSE(a.json.empty());
  EXPECT_TRUE(BalancedJson(a.json));
  // The two runs may or may not share a wall-clock second; after stripping
  // the wall_clock object the documents must be byte-identical.
  EXPECT_EQ(StripWallClock(a.json), StripWallClock(b.json));
}

TEST(RunReportTest, ReportHasSchemaVersionAndSections) {
  ReportRun r = RunReportedMachine(3);
  EXPECT_NE(r.json.find("\"schema_version\":2"), std::string::npos);
  for (const char* key : {"\"wall_clock\":", "\"config\":", "\"run\":", "\"counters\":",
                          "\"gauges\":", "\"histograms\":", "\"breakdowns\":",
                          "\"profiler\":", "\"timeseries\":", "\"lock_wait\":"}) {
    EXPECT_NE(r.json.find(key), std::string::npos) << key;
  }
}

TEST(RunReportTest, PhaseAttributionSumsToTotalCoreTime) {
  ReportRun r = RunReportedMachine(5);
  ASSERT_GT(r.total_core_time, 0);
  // Idle is derived as end_time - attributed, so the sum is exact — well
  // within the 0.1% acceptance bound.
  double rel = std::abs(static_cast<double>(r.attributed_plus_idle - r.total_core_time)) /
               static_cast<double>(r.total_core_time);
  EXPECT_LE(rel, 0.001);
  EXPECT_EQ(r.attributed_plus_idle, r.total_core_time);
  // The report itself carries the same total.
  EXPECT_NE(r.json.find("\"total_core_time_ns\":" + std::to_string(r.total_core_time)),
            std::string::npos);
}

}  // namespace
}  // namespace magesim
