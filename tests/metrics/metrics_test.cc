// Unit tests for the metrics registry, sim-time profiler (phase attribution
// and per-lock wait totals), and the periodic sampler against hand-computed
// rates.
#include "src/metrics/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/metrics/profiler.h"
#include "src/metrics/sampler.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace magesim {
namespace {

TEST(MetricsRegistryTest, RegistrationIsIdempotentAndHandlesShareCells) {
  MetricsRegistry reg;
  auto a = reg.Counter("kernel.faults");
  auto b = reg.Counter("kernel.faults");
  a.Add();
  b.Add(9);
  EXPECT_EQ(a.value(), 10u);
  EXPECT_EQ(reg.counter_value("kernel.faults"), 10u);
  EXPECT_EQ(reg.size(), 1u);

  auto g = reg.Gauge("run.ops_per_sec");
  g.Set(1.5);
  reg.Gauge("run.ops_per_sec").Add(0.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("run.ops_per_sec"), 2.0);

  auto h = reg.Hist("fault_latency_ns");
  h.Record(100);
  reg.Hist("fault_latency_ns").Record(300);
  ASSERT_NE(reg.find_histogram("fault_latency_ns"), nullptr);
  EXPECT_EQ(reg.find_histogram("fault_latency_ns")->count(), 2u);
  EXPECT_DOUBLE_EQ(reg.find_histogram("fault_latency_ns")->mean(), 200.0);
}

TEST(MetricsRegistryTest, HandlesStaySafeAcrossManyRegistrations) {
  MetricsRegistry reg;
  auto first = reg.Counter("c0");
  // Force lots of storage growth after the handle was taken.
  for (int i = 1; i < 200; ++i) {
    reg.Counter("c" + std::to_string(i)).Add(static_cast<uint64_t>(i));
  }
  first.Add(7);
  EXPECT_EQ(reg.counter_value("c0"), 7u);
  EXPECT_EQ(reg.counter_value("c199"), 199u);
}

TEST(MetricsRegistryTest, LookupsOfAbsentNamesAreBenign) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.Has("nope"));
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("nope"), 0.0);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
}

TEST(MetricsRegistryTest, SortedEntriesWalkByName) {
  MetricsRegistry reg;
  reg.Counter("zeta").Add(1);
  reg.Gauge("alpha").Set(2.0);
  reg.Hist("mid").Record(3);
  auto entries = reg.SortedEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(*entries[0].name, "alpha");
  EXPECT_EQ(*entries[1].name, "mid");
  EXPECT_EQ(*entries[2].name, "zeta");
  EXPECT_EQ(entries[0].kind, MetricsRegistry::Kind::kGauge);
  EXPECT_DOUBLE_EQ(reg.gauge_at(entries[0].index), 2.0);
  EXPECT_EQ(reg.counter_at(entries[2].index), 1u);
}

// --- Profiler --------------------------------------------------------------

TEST(SimProfilerTest, PhaseScopesAttributeElapsedSimTime) {
  Engine e;
  SimProfiler prof(2);
  prof.Install();
  auto body = [](SimProfiler& p) -> Task<> {
    {
      PhaseScope ps(0, SimPhase::kRdmaWait);
      co_await Delay{3900};
    }
    {
      PhaseScope ps(0, SimPhase::kFaultMap);
      co_await Delay{600};
    }
    {
      PhaseScope ps(1, SimPhase::kEviction);
      co_await Delay{1000};
    }
    p.AddPhase(1, SimPhase::kAppCompute, 250);
  };
  e.Spawn(body(prof));
  e.Run();
  prof.Uninstall();

  EXPECT_EQ(prof.core_phase(0, SimPhase::kRdmaWait), 3900);
  EXPECT_EQ(prof.core_phase(0, SimPhase::kFaultMap), 600);
  EXPECT_EQ(prof.core_phase(1, SimPhase::kEviction), 1000);
  EXPECT_EQ(prof.core_phase(1, SimPhase::kAppCompute), 250);
  EXPECT_EQ(prof.core_attributed(0), 4500);
  EXPECT_EQ(prof.core_attributed(1), 1250);
  EXPECT_EQ(prof.phase_total(SimPhase::kRdmaWait), 3900);
  EXPECT_EQ(prof.total_attributed(), 5750);
}

TEST(SimProfilerTest, AddPhaseIgnoresBogusInput) {
  SimProfiler prof(1);
  prof.AddPhase(-1, SimPhase::kEviction, 100);
  prof.AddPhase(5, SimPhase::kEviction, 100);
  prof.AddPhase(0, SimPhase::kEviction, 0);
  prof.AddPhase(0, SimPhase::kEviction, -7);
  EXPECT_EQ(prof.total_attributed(), 0);
}

TEST(SimProfilerTest, ScopesAreFreeWhenNoProfilerInstalled) {
  ASSERT_EQ(SimProfiler::Get(), nullptr);
  Engine e;
  auto body = []() -> Task<> {
    PhaseScope ps(0, SimPhase::kRdmaWait);
    co_await Delay{100};
  };
  e.Spawn(body());
  e.Run();  // must not crash; nothing recorded anywhere
}

Task<> ContendNamed(SimMutex& m, SimTime hold_ns) {
  co_await m.Lock();
  co_await Delay{hold_ns};
  m.Unlock();
}

TEST(SimProfilerTest, PerLockWaitSumsEqualTotal) {
  Engine e;
  SimProfiler prof(1);
  prof.Install();
  SimMutex mm_lock("mm_lock");
  SimMutex acct("accounting");
  SimMutex anon;  // reported under "<anonymous>"
  // 3 waiters on mm_lock (waits 100+200), 2 on accounting (wait 50),
  // 2 on the anonymous lock (wait 30).
  for (int i = 0; i < 3; ++i) e.Spawn(ContendNamed(mm_lock, 100));
  for (int i = 0; i < 2; ++i) e.Spawn(ContendNamed(acct, 50));
  for (int i = 0; i < 2; ++i) e.Spawn(ContendNamed(anon, 30));
  e.Run();
  prof.Uninstall();

  ASSERT_EQ(prof.lock_waits().size(), 3u);
  EXPECT_EQ(prof.lock_waits().at("mm_lock"), 100 + 200);
  EXPECT_EQ(prof.lock_waits().at("accounting"), 50);
  EXPECT_EQ(prof.lock_waits().at("<anonymous>"), 30);
  EXPECT_EQ(prof.lock_wait_events(), 4u);  // uncontended handoffs don't count
  SimTime sum = 0;
  for (const auto& [name, ns] : prof.lock_waits()) sum += ns;
  EXPECT_EQ(sum, prof.lock_wait_total());
  // Matches the mutexes' own stats.
  EXPECT_EQ(prof.lock_wait_total(),
            static_cast<SimTime>(mm_lock.stats().total_wait_ns + acct.stats().total_wait_ns +
                                 anon.stats().total_wait_ns));
}

TEST(SimProfilerTest, UninstallStopsLockObservation) {
  Engine e;
  SimProfiler prof(1);
  prof.Install();
  prof.Uninstall();
  SimMutex m("m");
  for (int i = 0; i < 2; ++i) e.Spawn(ContendNamed(m, 100));
  e.Run();
  EXPECT_EQ(prof.lock_wait_total(), 0);
  EXPECT_TRUE(prof.lock_waits().empty());
}

// --- Sampler ---------------------------------------------------------------

struct ScriptedSources {
  uint64_t free_pages = 0;
  uint64_t faults = 0;
  uint64_t evicted = 0;
  uint64_t ops = 0;
  double dirty = 0.0;
  uint64_t ipi_depth = 0;
  uint64_t read_busy = 0;
  uint64_t write_busy = 0;

  SamplerSources Sources() {
    return SamplerSources{
        .free_pages = [this] { return free_pages; },
        .faults = [this] { return faults; },
        .evicted_pages = [this] { return evicted; },
        .total_ops = [this] { return ops; },
        .dirty_ratio = [this] { return dirty; },
        .ipi_queue_depth = [this] { return ipi_depth; },
        .nic_read_busy_ns = [this] { return read_busy; },
        .nic_write_busy_ns = [this] { return write_busy; },
    };
  }
};

TEST(MetricsSamplerTest, WindowedRatesMatchHandComputedValues) {
  Engine e;
  ScriptedSources src;
  MetricsSampler sampler(src.Sources(), kMillisecond);
  auto driver = [](Engine& e, ScriptedSources& src, MetricsSampler& s) -> Task<> {
    src.free_pages = 1000;
    s.SampleNow();  // t=0 baseline
    // Window 1: +500 faults, +200 evictions, +1,000,000 ops; NIC read busy
    // for half the window, write for a quarter.
    src.faults += 500;
    src.evicted += 200;
    src.ops += 1000000;
    src.read_busy += 500 * kMicrosecond;
    src.write_busy += 250 * kMicrosecond;
    src.free_pages = 900;
    src.dirty = 0.25;
    src.ipi_depth = 3;
    co_await Delay{kMillisecond};
    s.SampleNow();
    // Window 2: nothing happens.
    co_await Delay{kMillisecond};
    s.SampleNow();
    e.RequestShutdown();
  };
  e.Spawn(driver(e, src, sampler));
  e.Run();

  ASSERT_EQ(sampler.samples().size(), 3u);
  const auto& s0 = sampler.samples()[0];
  EXPECT_EQ(s0.t, 0);
  EXPECT_EQ(s0.free_pages, 1000u);
  EXPECT_DOUBLE_EQ(s0.fault_rate_per_s, 0.0);  // no previous window

  const auto& s1 = sampler.samples()[1];
  EXPECT_EQ(s1.t, kMillisecond);
  EXPECT_EQ(s1.free_pages, 900u);
  EXPECT_EQ(s1.faults, 500u);
  EXPECT_EQ(s1.ipi_queue_depth, 3u);
  EXPECT_DOUBLE_EQ(s1.dirty_ratio, 0.25);
  // 500 faults / 1 ms = 500,000 faults/s; 200 evictions -> 200,000/s;
  // 1M ops -> 1e9 ops/s; busy 0.5 ms and 0.25 ms of a 1 ms window.
  EXPECT_DOUBLE_EQ(s1.fault_rate_per_s, 500000.0);
  EXPECT_DOUBLE_EQ(s1.evict_rate_per_s, 200000.0);
  EXPECT_DOUBLE_EQ(s1.ops_rate_per_s, 1e9);
  EXPECT_DOUBLE_EQ(s1.nic_read_util, 0.5);
  EXPECT_DOUBLE_EQ(s1.nic_write_util, 0.25);

  const auto& s2 = sampler.samples()[2];
  EXPECT_DOUBLE_EQ(s2.fault_rate_per_s, 0.0);
  EXPECT_DOUBLE_EQ(s2.nic_read_util, 0.0);
}

TEST(MetricsSamplerTest, SampleNowIsIdempotentPerTimestamp) {
  Engine e;
  ScriptedSources src;
  MetricsSampler sampler(src.Sources(), kMillisecond);
  auto driver = [](MetricsSampler& s) -> Task<> {
    s.SampleNow();
    s.SampleNow();  // duplicate at t=0 dropped
    co_await Delay{kMillisecond};
    s.SampleNow();
    s.SampleNow();
  };
  e.Spawn(driver(sampler));
  e.Run();
  EXPECT_EQ(sampler.samples().size(), 2u);
}

TEST(MetricsSamplerTest, ToleratesCumulativeCounterResets) {
  Engine e;
  ScriptedSources src;
  MetricsSampler sampler(src.Sources(), kMillisecond);
  auto driver = [](Engine& e, ScriptedSources& src, MetricsSampler& s) -> Task<> {
    src.faults = 1000;
    s.SampleNow();
    // Warmup-style reset: cumulative counter drops, then 100 new faults.
    src.faults = 100;
    co_await Delay{kMillisecond};
    s.SampleNow();
    e.RequestShutdown();
  };
  e.Spawn(driver(e, src, sampler));
  e.Run();
  ASSERT_EQ(sampler.samples().size(), 2u);
  // Post-reset the delta restarts from the new cumulative value instead of
  // underflowing to ~2^64.
  EXPECT_DOUBLE_EQ(sampler.samples()[1].fault_rate_per_s, 100000.0);
}

TEST(MetricsSamplerTest, MainSamplesUntilShutdown) {
  Engine e;
  ScriptedSources src;
  MetricsSampler sampler(src.Sources(), kMillisecond);
  e.Spawn(sampler.Main());
  auto stopper = [](Engine& e) -> Task<> {
    co_await Delay{3 * kMillisecond + kMicrosecond};
    e.RequestShutdown();
  };
  e.Spawn(stopper(e));
  e.Run();
  // Samples at t = 0, 1, 2, 3 ms.
  ASSERT_GE(sampler.samples().size(), 4u);
  EXPECT_EQ(sampler.samples()[0].t, 0);
  EXPECT_EQ(sampler.samples()[1].t, kMillisecond);
  EXPECT_EQ(sampler.samples()[3].t, 3 * kMillisecond);
}

TEST(MetricsSamplerTest, CsvHasHeaderAndOneRowPerSample) {
  Engine e;
  ScriptedSources src;
  MetricsSampler sampler(src.Sources(), kMillisecond);
  auto driver = [](ScriptedSources& src, MetricsSampler& s) -> Task<> {
    s.SampleNow();
    src.faults = 42;
    co_await Delay{kMillisecond};
    s.SampleNow();
  };
  e.Spawn(driver(src, sampler));
  e.Run();
  std::string csv = sampler.ToCsv();
  // Header is the Columns() list joined by commas.
  std::string header;
  for (const auto& c : MetricsSampler::Columns()) {
    if (!header.empty()) header += ',';
    header += c;
  }
  ASSERT_EQ(csv.compare(0, header.size(), header), 0);
  size_t lines = 0;
  for (char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, 1u + sampler.samples().size());
  EXPECT_NE(csv.find("42"), std::string::npos);
}

}  // namespace
}  // namespace magesim
