#include "src/sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"
#include "src/sim/task.h"

namespace magesim {
namespace {

Task<> HoldLock(Engine& e, SimMutex& m, SimTime hold_ns, std::vector<std::pair<int, SimTime>>& log,
                int id, WaitGroup& wg) {
  co_await m.Lock();
  log.emplace_back(id, e.now());
  co_await Delay{hold_ns};
  m.Unlock();
  wg.Done();
}

TEST(SimMutexTest, FifoOrderingAndSerialization) {
  Engine e;
  SimMutex m;
  WaitGroup wg;
  std::vector<std::pair<int, SimTime>> log;
  for (int i = 0; i < 4; ++i) {
    wg.Add();
    e.Spawn(HoldLock(e, m, 100, log, i, wg));
  }
  e.Run();
  ASSERT_EQ(log.size(), 4u);
  // Acquisitions serialize: t = 0, 100, 200, 300, in spawn (FIFO) order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(log[i].first, i);
    EXPECT_EQ(log[i].second, 100 * i);
  }
  EXPECT_FALSE(m.locked());
  EXPECT_EQ(m.stats().acquisitions, 4u);
  EXPECT_EQ(m.stats().contended, 3u);
  EXPECT_EQ(m.stats().total_wait_ns, 100 + 200 + 300);
  EXPECT_EQ(m.stats().max_wait_ns, 300);
}

TEST(SimMutexTest, TryLockRespectsState) {
  Engine e;
  SimMutex m;
  EXPECT_TRUE(m.TryLock());
  EXPECT_TRUE(m.locked());
  EXPECT_FALSE(m.TryLock());
  m.Unlock();
  EXPECT_FALSE(m.locked());
}

TEST(SimMutexTest, TryLockCountsInStats) {
  // Regression: TryLock acquisitions must land in stats() exactly like
  // Lock() ones (both route through DoAcquire).
  Engine e;
  SimMutex m;
  EXPECT_TRUE(m.TryLock());
  m.Unlock();
  EXPECT_TRUE(m.TryLock());
  m.Unlock();
  EXPECT_FALSE(m.TryLock() && m.TryLock());  // second attempt fails, no count
  m.Unlock();
  EXPECT_EQ(m.stats().acquisitions, 3u);
  EXPECT_EQ(m.stats().contended, 0u);
}

Task<> TrackOwner(Engine& e, SimMutex& m, TaskId& observed) {
  co_await m.Lock();
  observed = m.owner();
  co_await Delay{10};
  m.Unlock();
}

TEST(SimMutexTest, OwnerTracksLogicalTask) {
  Engine e;
  SimMutex m;
  TaskId observed = kNoTask;
  e.Spawn(TrackOwner(e, m, observed));
  e.Run();
  EXPECT_NE(observed, kNoTask);  // task ids start at 1; kNoTask means setup
  EXPECT_EQ(m.owner(), kNoTask);  // released at end of run
  // Setup-code acquisition (outside any task) is owned by kNoTask.
  EXPECT_TRUE(m.TryLock());
  EXPECT_EQ(m.owner(), kNoTask);
  m.Unlock();
}

Task<> ScopedUser(SimMutex& m, int& critical, bool& ok, WaitGroup& wg) {
  {
    auto g = co_await m.Scoped();
    ++critical;
    ok = ok && (critical == 1);
    co_await Delay{50};
    --critical;
  }
  wg.Done();
}

TEST(SimMutexTest, ScopedGuardEnforcesMutualExclusion) {
  Engine e;
  SimMutex m;
  WaitGroup wg;
  int critical = 0;
  bool ok = true;
  for (int i = 0; i < 5; ++i) {
    wg.Add();
    e.Spawn(ScopedUser(m, critical, ok, wg));
  }
  e.Run();
  EXPECT_TRUE(ok);
  EXPECT_FALSE(m.locked());
}

TEST(SimEventTest, SetReleasesAllWaiters) {
  Engine e;
  SimEvent ev;
  int released = 0;
  auto waiter = [](SimEvent& ev, int& released) -> Task<> {
    co_await ev.Wait();
    ++released;
  };
  for (int i = 0; i < 3; ++i) e.Spawn(waiter(ev, released));
  auto setter = [](SimEvent& ev) -> Task<> {
    co_await Delay{10};
    ev.Set();
  };
  e.Spawn(setter(ev));
  e.Run();
  EXPECT_EQ(released, 3);
  EXPECT_TRUE(ev.is_set());
}

TEST(SimEventTest, SetEventDoesNotBlock) {
  Engine e;
  SimEvent ev;
  ev.Set();
  SimTime when = -1;
  auto waiter = [](Engine& e, SimEvent& ev, SimTime& when) -> Task<> {
    co_await ev.Wait();
    when = e.now();
  };
  e.Spawn(waiter(e, ev, when));
  e.Run();
  EXPECT_EQ(when, 0);
}

TEST(CountdownLatchTest, ReleasesAtZero) {
  Engine e;
  CountdownLatch latch(3);
  SimTime released_at = -1;
  auto waiter = [](Engine& e, CountdownLatch& l, SimTime& t) -> Task<> {
    co_await l.Wait();
    t = e.now();
  };
  auto counter = [](CountdownLatch& l) -> Task<> {
    co_await Delay{100};
    l.CountDown();
    co_await Delay{100};
    l.CountDown();
    co_await Delay{100};
    l.CountDown();
  };
  e.Spawn(waiter(e, latch, released_at));
  e.Spawn(counter(latch));
  e.Run();
  EXPECT_EQ(released_at, 300);
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Engine e;
  SimSemaphore sem(2);
  int inside = 0;
  int max_inside = 0;
  WaitGroup wg;
  auto worker = [](SimSemaphore& s, int& inside, int& max_inside, WaitGroup& wg) -> Task<> {
    co_await s.Acquire();
    ++inside;
    max_inside = std::max(max_inside, inside);
    co_await Delay{100};
    --inside;
    s.Release();
    wg.Done();
  };
  for (int i = 0; i < 6; ++i) {
    wg.Add();
    e.Spawn(worker(sem, inside, max_inside, wg));
  }
  e.Run();
  EXPECT_EQ(max_inside, 2);
  EXPECT_EQ(sem.count(), 2);
}

TEST(ChannelTest, BoundedPushPop) {
  Engine e;
  Channel<int> ch(2);
  std::vector<int> received;
  std::vector<SimTime> push_times;
  auto producer = [](Engine& e, Channel<int>& ch, std::vector<SimTime>& t) -> Task<> {
    for (int i = 0; i < 4; ++i) {
      co_await ch.Push(i);
      t.push_back(e.now());
    }
  };
  auto consumer = [](Channel<int>& ch, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 4; ++i) {
      co_await Delay{100};
      out.push_back(co_await ch.Pop());
    }
  };
  e.Spawn(producer(e, ch, push_times));
  e.Spawn(consumer(ch, received));
  e.Run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3}));
  // First two pushes complete immediately; the rest block on capacity.
  EXPECT_EQ(push_times[0], 0);
  EXPECT_EQ(push_times[1], 0);
  EXPECT_GE(push_times[2], 100);
}

TEST(WaitGroupTest, WaitsForAll) {
  Engine e;
  WaitGroup wg;
  SimTime done_at = -1;
  auto worker = [](WaitGroup& wg, SimTime d) -> Task<> {
    co_await Delay{d};
    wg.Done();
  };
  wg.Add(3);
  e.Spawn(worker(wg, 50));
  e.Spawn(worker(wg, 500));
  e.Spawn(worker(wg, 200));
  auto waiter = [](Engine& e, WaitGroup& wg, SimTime& t) -> Task<> {
    co_await wg.Wait();
    t = e.now();
  };
  e.Spawn(waiter(e, wg, done_at));
  e.Run();
  EXPECT_EQ(done_at, 500);
}

}  // namespace
}  // namespace magesim
