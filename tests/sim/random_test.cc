#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace magesim {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(456);
  bool all_equal = true;
  bool any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal = all_equal && (va == vb);
    any_diff_c = any_diff_c || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(RngTest, NextU64InRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextU64(17), 17u);
  }
}

TEST(RngTest, NextU64RoughlyUniform) {
  Rng r(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[r.NextU64(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng r(5);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double v = r.NextExponential(250.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 250.0, 10.0);
}

TEST(ZipfTest, ProducesValuesInRange) {
  Rng r(9);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(r), 1000u);
  }
}

TEST(ZipfTest, IsSkewedTowardLowRanks) {
  Rng r(13);
  ZipfGenerator zipf(100000, 0.99);
  constexpr int kSamples = 100000;
  int rank0 = 0, top10 = 0;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = zipf.Next(r);
    if (v == 0) ++rank0;
    if (v < 10) ++top10;
  }
  // With theta=0.99, N=1e5: P(rank 0) ~ 1/zeta ~ 7.8%; top-10 ~ 30%.
  EXPECT_GT(rank0, kSamples * 4 / 100);
  EXPECT_GT(top10, kSamples * 20 / 100);
  EXPECT_LT(top10, kSamples * 45 / 100);
}

TEST(ZipfTest, LowThetaApproachesUniform) {
  Rng r(17);
  ZipfGenerator zipf(100, 0.01);
  constexpr int kSamples = 100000;
  int rank0 = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(r) == 0) ++rank0;
  }
  // Near-uniform: rank 0 close to 1%.
  EXPECT_LT(rank0, kSamples * 4 / 100);
}

TEST(ScrambleTest, StaysInRangeAndIsDeterministic) {
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t a = ScrambleIndex(i, 777);
    uint64_t b = ScrambleIndex(i, 777);
    EXPECT_EQ(a, b);
    EXPECT_LT(a, 777u);
  }
}

TEST(ScrambleTest, SpreadsConsecutiveIndices) {
  // Consecutive inputs should not stay consecutive.
  std::map<uint64_t, int> hist;
  int adjacent = 0;
  uint64_t prev = ScrambleIndex(0, 1 << 20);
  for (uint64_t i = 1; i < 1000; ++i) {
    uint64_t cur = ScrambleIndex(i, 1 << 20);
    if (cur == prev + 1) ++adjacent;
    prev = cur;
  }
  EXPECT_LT(adjacent, 5);
}

}  // namespace
}  // namespace magesim
