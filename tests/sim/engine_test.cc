#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/task.h"

namespace magesim {
namespace {

TEST(EngineTest, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
}

TEST(EngineTest, RunOnEmptyQueueReturnsZero) {
  Engine e;
  EXPECT_EQ(e.Run(), 0u);
}

Task<> RecordTimes(Engine& e, std::vector<SimTime>& out) {
  out.push_back(e.now());
  co_await Delay{100};
  out.push_back(e.now());
  co_await Delay{250};
  out.push_back(e.now());
}

TEST(EngineTest, DelayAdvancesTime) {
  Engine e;
  std::vector<SimTime> times;
  e.Spawn(RecordTimes(e, times));
  e.Run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 0);
  EXPECT_EQ(times[1], 100);
  EXPECT_EQ(times[2], 350);
}

TEST(EngineTest, ZeroDelayDoesNotSuspend) {
  Engine e;
  int steps = 0;
  auto body = [](int& steps) -> Task<> {
    co_await Delay{0};
    ++steps;
    co_await Delay{-5};
    ++steps;
  };
  e.Spawn(body(steps));
  e.Run();
  EXPECT_EQ(steps, 2);
}

Task<> Ticker(Engine& e, SimTime period, int count, std::vector<std::pair<int, SimTime>>& log,
              int id) {
  for (int i = 0; i < count; ++i) {
    co_await Delay{period};
    log.emplace_back(id, e.now());
  }
}

TEST(EngineTest, InterleavesTasksInTimeOrder) {
  Engine e;
  std::vector<std::pair<int, SimTime>> log;
  e.Spawn(Ticker(e, 30, 3, log, 1));  // fires at 30, 60, 90
  e.Spawn(Ticker(e, 20, 3, log, 2));  // fires at 20, 40, 60
  e.Run();
  ASSERT_EQ(log.size(), 6u);
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].second, log[i].second);
  }
  // Equal timestamps (60) preserve scheduling order: task 1 was scheduled
  // for t=60 before task 2 re-armed for t=60.
  EXPECT_EQ(log[0], (std::pair<int, SimTime>{2, 20}));
}

Task<int> Inner() {
  co_await Delay{10};
  co_return 42;
}

Task<> Outer(Engine& e, int& result, SimTime& when) {
  result = co_await Inner();
  when = e.now();
}

TEST(EngineTest, AwaitingTaskPropagatesValueAndTime) {
  Engine e;
  int result = 0;
  SimTime when = -1;
  e.Spawn(Outer(e, result, when));
  e.Run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(when, 10);
}

Task<> Thrower() {
  co_await Delay{5};
  throw std::runtime_error("boom");
}

Task<> Catcher(bool& caught) {
  try {
    co_await Thrower();
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(EngineTest, ExceptionPropagatesToAwaiter) {
  Engine e;
  bool caught = false;
  e.Spawn(Catcher(caught));
  e.Run();
  EXPECT_TRUE(caught);
}

TEST(EngineTest, ShutdownFlagIsObservable) {
  Engine e;
  int iterations = 0;
  auto loop = [](Engine& e, int& iterations) -> Task<> {
    while (!e.shutdown_requested()) {
      co_await Delay{100};
      ++iterations;
    }
  };
  auto stopper = [](Engine& e) -> Task<> {
    co_await Delay{1000};
    e.RequestShutdown();
  };
  e.Spawn(loop(e, iterations));
  e.Spawn(stopper(e));
  e.Run();
  EXPECT_EQ(iterations, 10);
}

TEST(EngineTest, DeterministicEventCount) {
  auto run_once = []() {
    Engine e;
    std::vector<std::pair<int, SimTime>> log;
    e.Spawn(Ticker(e, 7, 100, log, 1));
    e.Spawn(Ticker(e, 11, 100, log, 2));
    e.Run();
    return e.events_processed();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineTest, YieldNowRunsOtherSameTimeEventsFirst) {
  Engine e;
  std::vector<int> order;
  auto a = [](std::vector<int>& order) -> Task<> {
    order.push_back(1);
    co_await YieldNow{};
    order.push_back(3);
  };
  auto b = [](std::vector<int>& order) -> Task<> {
    order.push_back(2);
    co_return;
  };
  e.Spawn(a(order));
  e.Spawn(b(order));
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace magesim
