// Unit tests for the hot-path slab allocator (src/sim/slab_alloc.h): block
// recycling, header-routed frees across enable/disable flips, oversize
// fallback, and alignment guarantees coroutine frames rely on.
#include "src/sim/slab_alloc.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

namespace magesim {
namespace {

// The allocator is process-global; tests restore the entry state so ordering
// between tests (and the sanitizer default-off builds) does not matter.
class SlabAllocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    entry_enabled_ = SlabAllocator::enabled();
    SlabAllocator::set_enabled(true);
  }
  void TearDown() override { SlabAllocator::set_enabled(entry_enabled_); }
  bool entry_enabled_ = false;
};

TEST_F(SlabAllocTest, RoundTripAndAlignment) {
  for (size_t n : {1u, 8u, 48u, 100u, 512u, 4000u}) {
    void* p = SlabAllocator::Allocate(n);
    ASSERT_NE(p, nullptr);
    // Coroutine frames require at least __STDCPP_DEFAULT_NEW_ALIGNMENT__.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u) << "n=" << n;
    std::memset(p, 0xab, n);  // must be writable end to end
    SlabAllocator::Deallocate(p);
  }
}

TEST_F(SlabAllocTest, FreelistRecyclesSameClass) {
  SlabAllocator::ResetStats();
  void* a = SlabAllocator::Allocate(100);
  SlabAllocator::Deallocate(a);
  // Same size class (64-byte granularity): must get the recycled block back.
  void* b = SlabAllocator::Allocate(80);
  EXPECT_EQ(a, b);
  EXPECT_GE(SlabAllocator::stats().freelist_hits, 1u);
  SlabAllocator::Deallocate(b);

  // A different class must not steal it.
  void* c = SlabAllocator::Allocate(1000);
  EXPECT_NE(c, b);
  SlabAllocator::Deallocate(c);
}

TEST_F(SlabAllocTest, OversizeFallsBackToHeap) {
  SlabAllocator::ResetStats();
  void* p = SlabAllocator::Allocate(SlabAllocator::kMaxSlabBytes + 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(SlabAllocator::stats().heap_allocs, 1u);
  std::memset(p, 0x5a, SlabAllocator::kMaxSlabBytes + 1);
  SlabAllocator::Deallocate(p);  // header routes it back to ::operator delete
}

TEST_F(SlabAllocTest, CrossEnableFreesRouteByHeader) {
  // Allocate from slabs, flip the allocator off, free: the header must still
  // route the block back to its free list (not to ::operator delete, which
  // would be heap corruption).
  void* slab_block = SlabAllocator::Allocate(64);
  SlabAllocator::set_enabled(false);
  SlabAllocator::Deallocate(slab_block);

  // And the mirror image: heap block allocated while disabled, freed while
  // enabled.
  void* heap_block = SlabAllocator::Allocate(64);
  SlabAllocator::set_enabled(true);
  SlabAllocator::Deallocate(heap_block);

  // The slab block is recyclable again.
  void* again = SlabAllocator::Allocate(64);
  EXPECT_EQ(again, slab_block);
  SlabAllocator::Deallocate(again);
}

TEST_F(SlabAllocTest, ManyBlocksAreDistinctAndReusable) {
  constexpr int kN = 1000;
  std::vector<void*> blocks;
  std::set<void*> unique;
  for (int i = 0; i < kN; ++i) {
    void* p = SlabAllocator::Allocate(200);
    blocks.push_back(p);
    unique.insert(p);
  }
  EXPECT_EQ(unique.size(), static_cast<size_t>(kN));
  for (void* p : blocks) SlabAllocator::Deallocate(p);
  // Reallocation of the same class drains exactly the recycled set.
  blocks.clear();
  for (int i = 0; i < kN; ++i) {
    void* p = SlabAllocator::Allocate(200);
    EXPECT_EQ(unique.count(p), 1u) << "expected a recycled block";
    blocks.push_back(p);
  }
  for (void* p : blocks) SlabAllocator::Deallocate(p);
}

TEST_F(SlabAllocTest, StatsAccounting) {
  SlabAllocator::ResetStats();
  void* a = SlabAllocator::Allocate(64);
  void* b = SlabAllocator::Allocate(64);
  SlabAllocator::Deallocate(a);
  SlabAllocator::Deallocate(b);
  const SlabStats& s = SlabAllocator::stats();
  EXPECT_EQ(s.allocs, 2u);
  EXPECT_EQ(s.frees, 2u);
  EXPECT_EQ(s.heap_allocs, 0u);
}

TEST_F(SlabAllocTest, SlabStdAllocatorSharedPtr) {
  // allocate_shared via the shim: object + control block in one slab block,
  // destroyed and recycled when the last reference drops.
  SlabAllocator::ResetStats();
  struct Payload {
    uint64_t a = 7;
    uint64_t b = 9;
  };
  {
    auto sp = std::allocate_shared<Payload>(SlabStdAllocator<Payload>{});
    EXPECT_EQ(sp->a + sp->b, 16u);
    auto sp2 = sp;  // refcount churn must not free
    EXPECT_EQ(sp2.use_count(), 2);
  }
  const SlabStats& s = SlabAllocator::stats();
  EXPECT_GE(s.allocs, 1u);
  EXPECT_EQ(s.frees, s.allocs);  // everything came back
}

}  // namespace
}  // namespace magesim
