#include "src/sim/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/sim/random.h"

namespace magesim {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_EQ(h.mean(), 1234.0);
  // Interpolated percentile clamps to [min, max], so a single sample is exact.
  EXPECT_EQ(h.Percentile(50), 1234);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (int i = 0; i < 16; ++i) h.Record(i);
  EXPECT_EQ(h.Percentile(0), 0);
  EXPECT_EQ(h.Percentile(100), 15);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 15);
}

TEST(HistogramTest, PercentilesOfUniformData) {
  Histogram h;
  for (int64_t v = 1; v <= 100000; ++v) h.Record(v);
  // Sub-bucket interpolation is near-exact on uniform data (the p99 sub-bucket
  // is truncated by the data max, so it keeps a wider bound).
  EXPECT_NEAR(h.Percentile(50), 50000, 50000 * 0.005);
  EXPECT_NEAR(h.Percentile(99), 99000, 99000 * 0.02);
  EXPECT_NEAR(h.mean(), 50000.5, 1.0);
}

TEST(HistogramTest, TailPercentileSeparatesModes) {
  Histogram h;
  for (int i = 0; i < 9900; ++i) h.Record(1000);
  for (int i = 0; i < 100; ++i) h.Record(1000000);
  EXPECT_NEAR(h.Percentile(50), 1000, 20);
  EXPECT_GT(h.Percentile(99.5), 500000);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.mean(), 505.0, 0.1);
}

TEST(HistogramTest, RecordNEquivalentToLoop) {
  Histogram a, b;
  a.RecordN(77, 1000);
  for (int i = 0; i < 1000; ++i) b.Record(77);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.Percentile(99), b.Percentile(99));
}

TEST(HistogramTest, LargeValuesStayBounded) {
  Histogram h;
  Rng r(1);
  int64_t max_seen = 0;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = static_cast<int64_t>(r.NextU64(1ULL << 40));
    max_seen = std::max(max_seen, v);
    h.Record(v);
  }
  EXPECT_EQ(h.max(), max_seen);
  EXPECT_LE(h.Percentile(100), max_seen);
  // Percentile never exceeds recorded max (clamped).
  EXPECT_GE(h.Percentile(99.99), h.Percentile(50));
}

// --- Property tests -------------------------------------------------------

TEST(HistogramPropertyTest, PercentileMonotoneInP) {
  Rng r(7);
  for (int trial = 0; trial < 20; ++trial) {
    Histogram h;
    int n = 1 + static_cast<int>(r.NextU64(2000));
    for (int i = 0; i < n; ++i) {
      // Mix magnitudes so many buckets are populated.
      int shift = static_cast<int>(r.NextU64(50));
      h.Record(static_cast<int64_t>(r.NextU64(1ULL << shift)));
    }
    int64_t prev = h.Percentile(0);
    for (double p = 0.5; p <= 100.0; p += 0.5) {
      int64_t cur = h.Percentile(p);
      ASSERT_GE(cur, prev) << "trial " << trial << " p=" << p;
      prev = cur;
    }
    EXPECT_LE(h.Percentile(100), h.max());
    EXPECT_GE(h.Percentile(0), 0);
  }
}

TEST(HistogramPropertyTest, MergeEqualsRecordingUnion) {
  Rng r(11);
  for (int trial = 0; trial < 20; ++trial) {
    Histogram a, b, both;
    int na = static_cast<int>(r.NextU64(500));
    int nb = static_cast<int>(r.NextU64(500));
    for (int i = 0; i < na; ++i) {
      int64_t v = static_cast<int64_t>(r.NextU64(1ULL << 44));
      a.Record(v);
      both.Record(v);
    }
    for (int i = 0; i < nb; ++i) {
      int64_t v = static_cast<int64_t>(r.NextU64(1ULL << 20));
      b.Record(v);
      both.Record(v);
    }
    a.Merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.sum(), both.sum());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
      EXPECT_EQ(a.Percentile(p), both.Percentile(p)) << "trial " << trial << " p=" << p;
    }
  }
}

TEST(HistogramPropertyTest, ResetRestoresEmptyState) {
  Histogram h;
  Rng r(13);
  for (int i = 0; i < 1000; ++i) h.Record(static_cast<int64_t>(r.NextU64(1ULL << 30)));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  // A reset histogram behaves exactly like a fresh one.
  Histogram fresh;
  h.Record(42);
  fresh.Record(42);
  EXPECT_EQ(h.Percentile(100), fresh.Percentile(100));
  EXPECT_EQ(h.min(), fresh.min());
}

TEST(HistogramPropertyTest, BucketBoundaryValues) {
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(kMax);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), kMax);
  // Percentiles stay within [0, max] and non-negative even for the top bucket,
  // whose raw upper bound would overflow int64_t.
  for (double p : {0.0, 33.0, 50.0, 67.0, 99.0, 100.0}) {
    int64_t v = h.Percentile(p);
    EXPECT_GE(v, 0) << "p=" << p;
    EXPECT_LE(v, kMax) << "p=" << p;
  }
  EXPECT_EQ(h.Percentile(0), 0);
  EXPECT_EQ(h.Percentile(100), kMax);

  // Powers of two land on bucket edges; they must round-trip through
  // bucketing without crashing and keep percentiles ordered.
  Histogram edges;
  for (int log2 = 0; log2 < 63; ++log2) edges.Record(int64_t{1} << log2);
  EXPECT_EQ(edges.count(), 63u);
  int64_t prev = -1;
  for (double p = 0; p <= 100.0; p += 1.0) {
    int64_t cur = edges.Percentile(p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(HistogramPropertyTest, InterpolatedPercentileNearSortedExact) {
  // The estimate and the true target-rank sample share a sub-bucket, so the
  // error is bounded by one sub-bucket width (exact/16, +1 for rounding).
  Rng r(17);
  for (int trial = 0; trial < 20; ++trial) {
    Histogram h;
    std::vector<int64_t> vals;
    int n = 50 + static_cast<int>(r.NextU64(2000));
    for (int i = 0; i < n; ++i) {
      int shift = 4 + static_cast<int>(r.NextU64(30));
      int64_t v = static_cast<int64_t>(r.NextU64(1ULL << shift));
      vals.push_back(v);
      h.Record(v);
    }
    std::sort(vals.begin(), vals.end());
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
      size_t rank = static_cast<size_t>(p / 100.0 * static_cast<double>(n));
      if (rank >= vals.size()) rank = vals.size() - 1;
      int64_t exact = vals[rank];
      int64_t est = h.Percentile(p);
      ASSERT_LE(std::abs(static_cast<double>(est - exact)),
                static_cast<double>(exact) / 16.0 + 1.0)
          << "trial " << trial << " p=" << p << " exact=" << exact << " est=" << est;
    }
  }
}

TEST(BreakdownTest, AccumulatesPerCategory) {
  Breakdown b;
  b.Add("rdma", 3900);
  b.Add("rdma", 4100);
  b.Add("tlb", 500);
  EXPECT_EQ(b.entries().at("rdma").total_ns, 8000);
  EXPECT_EQ(b.entries().at("rdma").count, 2u);
  EXPECT_DOUBLE_EQ(b.MeanPer("rdma", 2), 4000.0);
  EXPECT_DOUBLE_EQ(b.MeanPer("tlb", 2), 250.0);
  EXPECT_DOUBLE_EQ(b.MeanPer("absent", 2), 0.0);
}

TEST(BreakdownTest, InternedIdsMatchStringPath) {
  int rdma = Breakdown::InternCategory("rdma");
  int tlb = Breakdown::InternCategory("tlb");
  // Interning is idempotent and ids round-trip through CategoryName.
  EXPECT_EQ(Breakdown::InternCategory("rdma"), rdma);
  EXPECT_NE(rdma, tlb);
  EXPECT_EQ(Breakdown::CategoryName(rdma), "rdma");
  EXPECT_EQ(Breakdown::CategoryName(tlb), "tlb");

  Breakdown by_id, by_name;
  by_id.Add(rdma, 3900);
  by_id.Add(rdma, 4100);
  by_id.Add(tlb, 500);
  by_name.Add("rdma", 3900);
  by_name.Add("rdma", 4100);
  by_name.Add("tlb", 500);
  EXPECT_EQ(by_id.entries(), by_name.entries());
  EXPECT_DOUBLE_EQ(by_id.MeanPer(rdma, 2), by_name.MeanPer("rdma", 2));
  // Untouched categories (even interned ones) are omitted from the view.
  Breakdown::InternCategory("never-added");
  EXPECT_EQ(by_id.entries().count("never-added"), 0u);

  by_id.Reset();
  EXPECT_TRUE(by_id.entries().empty());
  EXPECT_DOUBLE_EQ(by_id.MeanPer(rdma, 2), 0.0);
}

TEST(TimeSeriesTest, BucketsByTime) {
  TimeSeries ts(100 * kMillisecond);
  ts.Add(0, 1);
  ts.Add(50 * kMillisecond, 1);
  ts.Add(150 * kMillisecond, 5);
  ts.Add(999 * kMillisecond, 2);
  ASSERT_EQ(ts.buckets().size(), 10u);
  EXPECT_EQ(ts.buckets()[0], 2);
  EXPECT_EQ(ts.buckets()[1], 5);
  EXPECT_EQ(ts.buckets()[9], 2);
  EXPECT_DOUBLE_EQ(ts.RatePerSec(1), 50.0);  // 5 events / 0.1 s
  EXPECT_DOUBLE_EQ(ts.RatePerSec(42), 0.0);
}

}  // namespace
}  // namespace magesim
