#include "src/sim/stats.h"

#include <gtest/gtest.h>

#include "src/sim/random.h"

namespace magesim {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_EQ(h.mean(), 1234.0);
  // Bucketed percentile has <= ~6% relative error.
  EXPECT_NEAR(h.Percentile(50), 1234, 1234 * 0.07);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (int i = 0; i < 16; ++i) h.Record(i);
  EXPECT_EQ(h.Percentile(0), 0);
  EXPECT_EQ(h.Percentile(100), 15);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 15);
}

TEST(HistogramTest, PercentilesOfUniformData) {
  Histogram h;
  for (int64_t v = 1; v <= 100000; ++v) h.Record(v);
  EXPECT_NEAR(h.Percentile(50), 50000, 50000 * 0.07);
  EXPECT_NEAR(h.Percentile(99), 99000, 99000 * 0.07);
  EXPECT_NEAR(h.mean(), 50000.5, 1.0);
}

TEST(HistogramTest, TailPercentileSeparatesModes) {
  Histogram h;
  for (int i = 0; i < 9900; ++i) h.Record(1000);
  for (int i = 0; i < 100; ++i) h.Record(1000000);
  EXPECT_NEAR(h.Percentile(50), 1000, 70);
  EXPECT_GT(h.Percentile(99.5), 500000);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.mean(), 505.0, 0.1);
}

TEST(HistogramTest, RecordNEquivalentToLoop) {
  Histogram a, b;
  a.RecordN(77, 1000);
  for (int i = 0; i < 1000; ++i) b.Record(77);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.Percentile(99), b.Percentile(99));
}

TEST(HistogramTest, LargeValuesStayBounded) {
  Histogram h;
  Rng r(1);
  int64_t max_seen = 0;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = static_cast<int64_t>(r.NextU64(1ULL << 40));
    max_seen = std::max(max_seen, v);
    h.Record(v);
  }
  EXPECT_EQ(h.max(), max_seen);
  EXPECT_LE(h.Percentile(100), max_seen);
  // Percentile never exceeds recorded max (clamped).
  EXPECT_GE(h.Percentile(99.99), h.Percentile(50));
}

TEST(BreakdownTest, AccumulatesPerCategory) {
  Breakdown b;
  b.Add("rdma", 3900);
  b.Add("rdma", 4100);
  b.Add("tlb", 500);
  EXPECT_EQ(b.entries().at("rdma").total_ns, 8000);
  EXPECT_EQ(b.entries().at("rdma").count, 2u);
  EXPECT_DOUBLE_EQ(b.MeanPer("rdma", 2), 4000.0);
  EXPECT_DOUBLE_EQ(b.MeanPer("tlb", 2), 250.0);
  EXPECT_DOUBLE_EQ(b.MeanPer("absent", 2), 0.0);
}

TEST(TimeSeriesTest, BucketsByTime) {
  TimeSeries ts(100 * kMillisecond);
  ts.Add(0, 1);
  ts.Add(50 * kMillisecond, 1);
  ts.Add(150 * kMillisecond, 5);
  ts.Add(999 * kMillisecond, 2);
  ASSERT_EQ(ts.buckets().size(), 10u);
  EXPECT_EQ(ts.buckets()[0], 2);
  EXPECT_EQ(ts.buckets()[1], 5);
  EXPECT_EQ(ts.buckets()[9], 2);
  EXPECT_DOUBLE_EQ(ts.RatePerSec(1), 50.0);  // 5 events / 0.1 s
  EXPECT_DOUBLE_EQ(ts.RatePerSec(42), 0.0);
}

}  // namespace
}  // namespace magesim
